//! Property tests for the log-bucketed histogram (merge commutes,
//! percentiles are monotone in the quantile, every recorded value lands
//! inside its reported bucket bounds) and for the Prometheus text
//! exposition (arbitrary registry contents round-trip through the
//! strict line parser with cumulative, consistent histogram series).

use proptest::prelude::*;
use sciml_obs::histogram::{bucket_bounds, bucket_index, Histogram, NUM_BUCKETS};
use sciml_obs::{parse_prometheus, prometheus_text, MetricsRegistry};

fn build(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn recorded_value_within_bucket_bounds(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v, "value {v} below bucket lo {lo}");
        prop_assert!(v < hi || hi == u64::MAX, "value {v} not below bucket hi {hi}");
    }

    #[test]
    fn merge_commutes(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..64),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..64),
    ) {
        let ab = build(&a);
        ab.merge(&build(&b));
        let ba = build(&b);
        ba.merge(&build(&a));
        let (sab, sba) = (ab.snapshot(), ba.snapshot());
        prop_assert_eq!(sab.counts.clone(), sba.counts.clone());
        prop_assert_eq!(sab.count, sba.count);
        prop_assert_eq!(sab.sum, sba.sum);
        if sab.count > 0 {
            prop_assert_eq!(sab.min, sba.min);
            prop_assert_eq!(sab.max, sba.max);
        }
    }

    #[test]
    fn merge_equals_recording_concatenation(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..64),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..64),
    ) {
        let merged = build(&a);
        merged.merge(&build(&b));
        let mut both = a.clone();
        both.extend_from_slice(&b);
        let direct = build(&both);
        prop_assert_eq!(merged.snapshot().counts, direct.snapshot().counts);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.sum(), direct.sum());
    }

    #[test]
    fn percentile_monotone_in_quantile(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..128),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let snap = build(&values).snapshot();
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(snap.percentile(lo_q) <= snap.percentile(hi_q),
            "percentile({lo_q}) > percentile({hi_q})");
    }

    #[test]
    fn percentiles_bounded_by_min_max(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..128),
        q in 0.0f64..=1.0,
    ) {
        let snap = build(&values).snapshot();
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let p = snap.percentile(q);
        prop_assert!(p >= min, "percentile {p} below true min {min}");
        prop_assert!(p <= max, "percentile {p} above true max {max}");
    }

    #[test]
    fn sparse_roundtrip_preserves_distribution(
        values in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let snap = build(&values).snapshot();
        let rebuilt = sciml_obs::HistogramSnapshot::from_sparse(
            &snap.sparse(), snap.sum, snap.min, snap.max);
        prop_assert_eq!(rebuilt.counts, snap.counts);
        prop_assert_eq!(rebuilt.count, snap.count);
    }

    /// Any registry contents — counters, gauges (negative included),
    /// and a histogram of arbitrary values — survive the trip through
    /// [`prometheus_text`] and back through the strict line parser:
    /// every family keeps its declared kind, counter/gauge values are
    /// exact, `_bucket` series are cumulative and monotone ending at
    /// `+Inf == _count`, and `_count`/`_sum` match the histogram.
    #[test]
    fn prometheus_exposition_roundtrips_through_parser(
        counter in 0u64..1_000_000_000,
        gauge in -1_000_000i64..1_000_000,
        values in proptest::collection::vec(0u64..1_000_000_000_000, 0..64),
    ) {
        let reg = MetricsRegistry::new();
        reg.counter("test.events.total").add(counter);
        reg.gauge("test.queue.depth").set(gauge);
        let h = reg.histogram("test.latency_ns");
        for &v in &values {
            h.record(v);
        }
        let text = prometheus_text(&reg.snapshot());
        let parsed = parse_prometheus(&text).expect("exposition parses");

        prop_assert_eq!(parsed.kind("test_events_total"), Some("counter"));
        prop_assert_eq!(
            parsed.samples_named("test_events_total")[0].value.parse::<u64>().ok(),
            Some(counter)
        );
        prop_assert_eq!(parsed.kind("test_queue_depth"), Some("gauge"));
        prop_assert_eq!(
            parsed.samples_named("test_queue_depth")[0].value.parse::<i64>().ok(),
            Some(gauge)
        );

        prop_assert_eq!(parsed.kind("test_latency_ns"), Some("histogram"));
        let buckets = parsed.samples_named("test_latency_ns_bucket");
        prop_assert!(!buckets.is_empty(), "histogram always exposes +Inf");
        let mut prev = 0u64;
        for b in &buckets {
            let c: u64 = b.value.parse().expect("bucket count is an integer");
            prop_assert!(c >= prev, "bucket counts must be cumulative monotone");
            prev = c;
        }
        let last = &buckets[buckets.len() - 1];
        prop_assert_eq!(last.le.as_deref(), Some("+Inf"));
        let count: u64 = parsed.samples_named("test_latency_ns_count")[0]
            .value.parse().expect("count");
        prop_assert_eq!(prev, count, "+Inf bucket equals _count");
        prop_assert_eq!(count, values.len() as u64);
        let sum: u64 = parsed.samples_named("test_latency_ns_sum")[0]
            .value.parse().expect("sum");
        prop_assert_eq!(sum, values.iter().sum::<u64>());
    }
}
