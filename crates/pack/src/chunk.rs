//! Per-chunk encode/decode: adaptive delta, bin split, entropy stage.
//!
//! Each chunk is self-describing and independently decodable:
//!
//! ```text
//! n_values   u32   values in this chunk (1 ..= CHUNK_VALUES)
//! delta_order u8   0..=2, chosen by trial on a sample
//! offset_bits u8   k: low bits of each latent stored raw
//! n_bins     u16   bins on the high bits (<= 256; 0 when no latents)
//! heads      min(order, n_values) x u32   zigzagged delta heads
//! freqs      n_bins x u16   quantized bin frequencies, sum = TOTAL
//! rc_len     u32   range-coded section length in bytes
//! off_len    u32   offset bit-section length in bytes
//! rc bytes   range-coded bin indices (omitted when n_bins <= 1)
//! off bytes  LSB-first k-bit offsets, one per latent
//! crc        u32   CRC-32 over everything above
//! ```
//!
//! The trailing CRC covers the header fields too, so a flipped bit in
//! `delta_order` or the frequency table is caught before any arithmetic
//! runs on it.

use crate::range::{RangeDecoder, RangeEncoder, TOTAL};
use crate::PackError;
use sciml_bitio::BitWriter;
use sciml_compress::crc32::crc32;

/// Values per chunk. 64Ki values keeps the frequency table amortized to
/// well under 1% of payload while bounding the working set of a decode.
pub const CHUNK_VALUES: usize = 1 << 16;

/// Highest delta order the encoder will try.
const MAX_ORDER: usize = 2;

/// Sample size for the per-chunk delta-order trial.
const ORDER_SAMPLE: usize = 1024;

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

#[inline]
fn bit_len(z: u64) -> u32 {
    64 - z.leading_zeros()
}

/// Applies `order` rounds of first-differencing in place; after the call
/// `buf[..order]` holds the heads and `buf[order..]` the latents.
fn delta_forward(buf: &mut [i64], order: usize) {
    let n = buf.len();
    for pass in 0..order.min(n) {
        for i in ((pass + 1)..n).rev() {
            buf[i] -= buf[i - 1];
        }
    }
}

/// Picks the delta order (0..=2) minimizing the summed zigzag bit-length
/// over a sample prefix — the pcodec trick of trialing cheap proxies
/// instead of fully encoding each candidate.
fn choose_order(values: &[u32]) -> usize {
    let n = values.len().min(ORDER_SAMPLE);
    if n < 2 {
        return 0;
    }
    let mut buf: Vec<i64> = values[..n].iter().map(|&v| v as i64).collect();
    let mut best_order = 0usize;
    let mut best_cost = u64::MAX;
    for order in 0..=MAX_ORDER.min(n - 1) {
        if order > 0 {
            // One more differencing pass turns order-(p-1) latents into
            // order-p latents; heads buf[..order] are left alone.
            for i in ((order)..n).rev() {
                buf[i] -= buf[i - 1];
            }
        }
        let cost: u64 = buf[order..]
            .iter()
            .map(|&v| bit_len(zigzag(v)) as u64 + 1)
            .sum();
        if cost < best_cost {
            best_cost = cost;
            best_order = order;
        }
    }
    best_order
}

/// Quantizes raw bin counts to frequencies summing exactly to [`TOTAL`],
/// keeping every observed bin at frequency >= 1.
fn normalize_freqs(counts: &[u32]) -> Vec<u16> {
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    let mut freqs: Vec<u32> = counts
        .iter()
        .map(|&c| {
            if c == 0 {
                0
            } else {
                (((c as u64) * (TOTAL as u64)) / total).max(1) as u32
            }
        })
        .collect();
    let mut sum: i64 = freqs.iter().map(|&f| f as i64).sum();
    // Settle rounding drift on the largest bins: they can absorb the
    // difference without any bin dropping to zero.
    while sum != TOTAL as i64 {
        let step = if sum < TOTAL as i64 { 1i64 } else { -1i64 };
        let mut idx = None;
        let mut best = 0u32;
        for (i, &f) in freqs.iter().enumerate() {
            let eligible = if step > 0 { f >= 1 } else { f >= 2 };
            if eligible && f >= best {
                best = f;
                idx = Some(i);
            }
        }
        match idx {
            Some(i) => {
                freqs[i] = (freqs[i] as i64 + step) as u32;
                sum += step;
            }
            // Unreachable in practice (TOTAL >= n_bins guarantees an
            // eligible bin), but bail rather than loop forever.
            None => break,
        }
    }
    freqs.iter().map(|&f| f as u16).collect()
}

/// Encodes one chunk of `values` (each `< 2^(8*elem_width)`) onto `out`.
pub(crate) fn encode_chunk(values: &[u32], out: &mut Vec<u8>) {
    let n = values.len();
    debug_assert!((1..=CHUNK_VALUES).contains(&n));
    let order = choose_order(values);

    let mut buf: Vec<i64> = values.iter().map(|&v| v as i64).collect();
    delta_forward(&mut buf, order);
    let head_count = order.min(n);
    let latents: Vec<u64> = buf[head_count..].iter().map(|&v| zigzag(v)).collect();

    let max_z = latents.iter().copied().max().unwrap_or(0);
    // Cap the bin count at 256 by pushing excess precision into raw
    // offset bits; k = 0 when the latents already fit 8 bits.
    let k = bit_len(max_z).saturating_sub(8);
    let n_bins = if latents.is_empty() {
        0usize
    } else {
        ((max_z >> k) + 1) as usize
    };

    let mut counts = vec![0u32; n_bins];
    for &z in &latents {
        counts[(z >> k) as usize] += 1;
    }
    let freqs = if n_bins > 0 {
        normalize_freqs(&counts)
    } else {
        Vec::new()
    };
    let cum: Vec<u32> = freqs
        .iter()
        .scan(0u32, |acc, &f| {
            let c = *acc;
            *acc += f as u32;
            Some(c)
        })
        .collect();

    // Entropy stage: a single-bin model carries no information, so the
    // range-coded section is omitted entirely (rc_len = 0).
    let rc_bytes = if n_bins > 1 {
        let mut enc = RangeEncoder::new();
        for &z in &latents {
            let b = (z >> k) as usize;
            enc.encode(cum[b], freqs[b] as u32);
        }
        enc.finish()
    } else {
        Vec::new()
    };

    let off_bytes = if k > 0 {
        let mut w = BitWriter::new();
        let mask = (1u64 << k) - 1;
        for &z in &latents {
            w.write_bits((z & mask) as u32, k);
        }
        w.finish()
    } else {
        Vec::new()
    };

    let start = out.len();
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.push(order as u8);
    out.push(k as u8);
    out.extend_from_slice(&(n_bins as u16).to_le_bytes());
    for &h in &buf[..head_count] {
        out.extend_from_slice(&(zigzag(h) as u32).to_le_bytes());
    }
    for &f in &freqs {
        out.extend_from_slice(&f.to_le_bytes());
    }
    out.extend_from_slice(&(rc_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(off_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&rc_bytes);
    out.extend_from_slice(&off_bytes);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PackError> {
        let end = self.pos.checked_add(n).ok_or(PackError::Truncated)?;
        let s = self.data.get(self.pos..end).ok_or(PackError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, PackError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, PackError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, PackError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
}

/// Decodes one chunk starting at `data[*pos..]`, advancing `pos` past it.
/// `max_value` is the largest value the element width admits; anything
/// outside it after delta inversion is reported as corruption.
pub(crate) fn decode_chunk(
    data: &[u8],
    pos: &mut usize,
    max_value: u32,
    out: &mut Vec<u32>,
) -> Result<(), PackError> {
    let mut c = Cursor { data, pos: *pos };
    let body_start = c.pos;

    let n = c.u32()? as usize;
    if n == 0 || n > CHUNK_VALUES {
        return Err(PackError::Corrupt("chunk value count out of range"));
    }
    let order = c.u8()? as usize;
    if order > MAX_ORDER {
        return Err(PackError::Corrupt("delta order out of range"));
    }
    let k = c.u8()? as u32;
    if k > 32 {
        return Err(PackError::Corrupt("offset bits out of range"));
    }
    let n_bins = c.u16()? as usize;
    if n_bins > 256 {
        return Err(PackError::Corrupt("bin count out of range"));
    }
    let head_count = order.min(n);
    // lint:allow(no_alloc_hot_loop): per-chunk header parse; heads/freqs are bounded small tables
    let mut heads = Vec::with_capacity(head_count);
    for _ in 0..head_count {
        heads.push(unzigzag(c.u32()? as u64));
    }
    // lint:allow(no_alloc_hot_loop): per-chunk header parse; heads/freqs are bounded small tables
    let mut freqs = Vec::with_capacity(n_bins);
    for _ in 0..n_bins {
        freqs.push(c.u16()? as u32);
    }
    let rc_len = c.u32()? as usize;
    let off_len = c.u32()? as usize;
    let rc_bytes = c.take(rc_len)?;
    let off_bytes = c.take(off_len)?;
    let body_end = c.pos;
    let stored_crc = c.u32()?;
    let computed = crc32(&data[body_start..body_end]);
    if computed != stored_crc {
        return Err(PackError::ChecksumMismatch {
            stored: stored_crc,
            computed,
        });
    }

    let latent_count = n - head_count;
    if latent_count > 0 && n_bins == 0 {
        return Err(PackError::Corrupt("latents present but no bins"));
    }
    if n_bins > 0 {
        let sum: u64 = freqs.iter().map(|&f| f as u64).sum();
        if sum != TOTAL as u64 {
            return Err(PackError::Corrupt("bin frequencies do not sum to total"));
        }
    }
    // Fixed-size cumulative/frequency tables: `bin` always comes out of
    // a u8 LUT, so indexing a [u32; 256] needs no bounds check in the
    // hot loop (n_bins <= 256 was validated above).
    let mut freq_arr = [0u32; 256];
    let mut cum_arr = [0u32; 256];
    {
        let mut acc = 0u32;
        for (i, &f) in freqs.iter().enumerate() {
            cum_arr[i] = acc;
            freq_arr[i] = f;
            acc += f;
        }
    }

    // The offset section's size is checked once here so the per-latent
    // reads below can use an infallible inline accumulator instead of a
    // Result-returning bit reader in the hot loop.
    if k > 0 && (off_bytes.len() as u64) * 8 < (latent_count as u64) * (k as u64) {
        return Err(PackError::Truncated);
    }
    let mut off_acc: u64 = 0;
    let mut off_bits: u32 = 0;
    let mut off_pos = 0usize;
    let off_mask = if k == 0 { 0 } else { (1u64 << k) - 1 };
    // LSB-first k-bit read, mirroring BitWriter::write_bits. In-bounds:
    // the sufficiency check above caps total consumption at len * 8.
    macro_rules! next_offset {
        () => {{
            while off_bits < k {
                off_acc |= (off_bytes[off_pos] as u64) << off_bits;
                off_pos += 1;
                off_bits += 8;
            }
            let v = off_acc & off_mask;
            off_acc >>= k;
            off_bits -= k;
            v
        }};
    }

    // Streaming delta inversion fused into the decode loop: `v` is the
    // running value, `d` the running first difference (order 2 only), so
    // no intermediate i64 buffer or separate inverse/range-check passes
    // are needed. Wrapping arithmetic so corrupt-but-CRC-colliding input
    // cannot panic; every emitted value is range-checked in place.
    let max_v = max_value as i64;
    let mut v: i64 = 0;
    let mut d: i64 = 0;
    macro_rules! emit {
        ($z:expr) => {{
            let l = unzigzag($z);
            let val = match order {
                0 => l,
                1 => {
                    v = v.wrapping_add(l);
                    v
                }
                _ => {
                    d = d.wrapping_add(l);
                    v = v.wrapping_add(d);
                    v
                }
            };
            if val < 0 || val > max_v {
                return Err(PackError::Corrupt("reconstructed value out of range"));
            }
            out.push(val as u32);
        }};
    }
    if head_count >= 1 {
        v = heads[0];
        if v < 0 || v > max_v {
            return Err(PackError::Corrupt("reconstructed value out of range"));
        }
        out.push(v as u32);
    }
    if head_count == 2 {
        d = heads[1];
        v = v.wrapping_add(d);
        if v < 0 || v > max_v {
            return Err(PackError::Corrupt("reconstructed value out of range"));
        }
        out.push(v as u32);
    }

    if n_bins > 1 {
        // Direct target -> bin table: TOTAL is 4096, so one load per
        // symbol replaces a 256-bin binary search in the hot loop. Only
        // bins with freq >= 1 occupy slots, so every looked-up bin has a
        // non-zero frequency (decode_update relies on that).
        let mut lut = [0u8; TOTAL as usize];
        let mut slot = 0usize;
        for (b, &f) in freqs.iter().enumerate() {
            // In-bounds: the freqs sum to TOTAL (validated above).
            lut[slot..slot + f as usize].fill(b as u8);
            slot += f as usize;
        }
        let mut dec = RangeDecoder::new(rc_bytes)?;
        if k == 0 {
            for _ in 0..latent_count {
                let bin = lut[dec.decode_target() as usize] as usize;
                dec.decode_update(cum_arr[bin], freq_arr[bin]);
                emit!(bin as u64);
            }
        } else {
            for _ in 0..latent_count {
                let bin = lut[dec.decode_target() as usize] as usize;
                dec.decode_update(cum_arr[bin], freq_arr[bin]);
                let off = next_offset!();
                emit!(((bin as u64) << k) | off);
            }
        }
        if dec.overrun() {
            return Err(PackError::Truncated);
        }
    } else {
        for _ in 0..latent_count {
            let off = if k > 0 { next_offset!() } else { 0 };
            emit!(off);
        }
    }

    *pos = c.pos;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32], max: u32) {
        let mut bytes = Vec::new();
        encode_chunk(values, &mut bytes);
        let mut pos = 0;
        let mut out = Vec::new();
        decode_chunk(&bytes, &mut pos, max, &mut out).unwrap();
        assert_eq!(out, values);
        assert_eq!(pos, bytes.len());
    }

    #[test]
    fn constant_chunk() {
        roundtrip(&[7; 5000], 255);
    }

    #[test]
    fn single_value() {
        roundtrip(&[42], 255);
    }

    #[test]
    fn ramp_prefers_delta() {
        let v: Vec<u32> = (0..4096u32).map(|i| i * 3 % 65536).collect();
        roundtrip(&v, 65535);
    }

    #[test]
    fn quadratic_prefers_order_two() {
        let v: Vec<u32> = (0..2048u32).map(|i| (i * i) % 65536).collect();
        assert_eq!(choose_order(&v[..64]), 2);
        roundtrip(&v, 65535);
    }

    #[test]
    fn noisy_bytes() {
        let v: Vec<u32> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) & 0xFF)
            .collect();
        roundtrip(&v, 255);
    }

    #[test]
    fn normalize_keeps_all_bins_nonzero() {
        let counts = vec![100_000, 1, 1, 1];
        let f = normalize_freqs(&counts);
        assert_eq!(f.iter().map(|&x| x as u32).sum::<u32>(), TOTAL);
        assert!(f.iter().all(|&x| x >= 1));
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-5i64, -1, 0, 1, 5, i32::MAX as i64, -(i32::MAX as i64)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
