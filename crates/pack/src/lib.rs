//! Chunked adaptive compressor for numeric byte streams (pcodec-style).
//!
//! Scientific payloads — f16 tensors, u8 label masks, the deepcam
//! differential code stream — are sequences of small fixed-width
//! integers with strong local structure that general-purpose DEFLATE
//! models poorly (its Huffman stage spends at least one bit per symbol
//! and its LZ77 stage only exploits exact repeats). This crate instead:
//!
//! 1. splits the stream into chunks of [`CHUNK_VALUES`] fixed-width
//!    unsigned values;
//! 2. per chunk, trials delta encoding of order 0–2 on a sample and
//!    keeps the order minimizing zigzag bit-length;
//! 3. splits each zigzagged latent into a bin index (high bits, at most
//!    256 bins) and a raw k-bit offset;
//! 4. range-codes the bin indices against a quantized static frequency
//!    table and writes the offsets through the shared
//!    [`sciml_bitio`] bit writer.
//!
//! Every chunk carries its own header and CRC-32 (from
//! [`sciml_compress::crc32`]), so corruption and truncation surface as
//! typed [`PackError`]s — never a panic — and decoding can resume at any
//! chunk boundary. The stream header records the element width, making
//! the format self-describing: container layers (the `.sshard` store,
//! the serve protocol) only need to record *that* a payload is packed,
//! not how.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic      b"SPAK"
//! version    u8  (= 1)
//! elem_width u8  (1 or 2)
//! tail_len   u8  (< elem_width: bytes that did not fill a value)
//! reserved   u8  (= 0)
//! n_chunks   u32
//! raw_len    u64 (decoded byte length, tail included)
//! header_crc u32 (over the 20 bytes above)
//! chunks     ... (see crates/pack/src/chunk.rs)
//! tail       tail_len raw bytes
//! ```

pub mod chunk;
pub mod range;

pub use chunk::CHUNK_VALUES;

use std::fmt;

/// Stream magic: "Sciml PAcK".
pub const MAGIC: [u8; 4] = *b"SPAK";
/// Current format version.
pub const VERSION: u8 = 1;
/// Fixed stream header length in bytes (including its CRC).
pub const HEADER_LEN: usize = 24;

/// Decode failures. Encoding is infallible apart from width validation;
/// decoding turns any malformed input into one of these — the crate is
/// covered by the `no_panics` lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Stream does not start with [`MAGIC`].
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Element width not in {1, 2}.
    BadElemWidth(u8),
    /// A structural invariant was violated.
    Corrupt(&'static str),
    /// A CRC-32 over a header or chunk did not match.
    ChecksumMismatch {
        /// CRC recorded in the stream.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Truncated => write!(f, "packed stream truncated"),
            PackError::BadMagic => write!(f, "not a sciml-pack stream (bad magic)"),
            PackError::BadVersion(v) => write!(f, "unsupported pack format version {v}"),
            PackError::BadElemWidth(w) => write!(f, "unsupported element width {w}"),
            PackError::Corrupt(what) => write!(f, "corrupt packed stream: {what}"),
            PackError::ChecksumMismatch { stored, computed } => write!(
                f,
                "packed stream checksum mismatch (stored {stored:08x}, computed {computed:08x})"
            ),
        }
    }
}

impl std::error::Error for PackError {}

impl From<sciml_bitio::BitIoError> for PackError {
    fn from(e: sciml_bitio::BitIoError) -> Self {
        match e {
            sciml_bitio::BitIoError::UnexpectedEof => PackError::Truncated,
        }
    }
}

fn max_value_for_width(width: u8) -> u32 {
    if width == 1 {
        u8::MAX as u32
    } else {
        u16::MAX as u32
    }
}

/// Compresses `data` interpreted as little-endian unsigned values of
/// `elem_width` bytes (1 or 2). A trailing partial value is carried raw.
pub fn pack(data: &[u8], elem_width: u8) -> Result<Vec<u8>, PackError> {
    if elem_width != 1 && elem_width != 2 {
        return Err(PackError::BadElemWidth(elem_width));
    }
    let w = elem_width as usize;
    let tail_len = data.len() % w;
    let body = &data[..data.len() - tail_len];

    let values: Vec<u32> = if w == 1 {
        body.iter().map(|&b| b as u32).collect()
    } else {
        body.chunks_exact(2)
            .map(|p| u16::from_le_bytes([p[0], p[1]]) as u32)
            .collect()
    };

    let n_chunks = values.len().div_ceil(CHUNK_VALUES);
    let mut out = Vec::with_capacity(HEADER_LEN + data.len() / 2);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(elem_width);
    out.push(tail_len as u8);
    out.push(0);
    out.extend_from_slice(&(n_chunks as u32).to_le_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    let hcrc = sciml_compress::crc32::crc32(&out[..HEADER_LEN - 4]);
    out.extend_from_slice(&hcrc.to_le_bytes());

    for chunk in values.chunks(CHUNK_VALUES) {
        chunk::encode_chunk(chunk, &mut out);
    }
    out.extend_from_slice(&data[data.len() - tail_len..]);
    Ok(out)
}

/// Decompresses a stream produced by [`pack`], returning the original
/// bytes. All failure modes are typed; no input can cause a panic.
pub fn unpack(data: &[u8]) -> Result<Vec<u8>, PackError> {
    let header = data.get(..HEADER_LEN).ok_or(PackError::Truncated)?;
    if header[..4] != MAGIC {
        return Err(PackError::BadMagic);
    }
    let stored = u32::from_le_bytes([
        header[HEADER_LEN - 4],
        header[HEADER_LEN - 3],
        header[HEADER_LEN - 2],
        header[HEADER_LEN - 1],
    ]);
    let computed = sciml_compress::crc32::crc32(&header[..HEADER_LEN - 4]);
    if stored != computed {
        return Err(PackError::ChecksumMismatch { stored, computed });
    }
    let version = header[4];
    if version != VERSION {
        return Err(PackError::BadVersion(version));
    }
    let elem_width = header[5];
    if elem_width != 1 && elem_width != 2 {
        return Err(PackError::BadElemWidth(elem_width));
    }
    let tail_len = header[6] as usize;
    if tail_len >= elem_width as usize {
        return Err(PackError::Corrupt("tail longer than element width"));
    }
    let n_chunks = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let raw_len = u64::from_le_bytes([
        header[12], header[13], header[14], header[15], header[16], header[17], header[18],
        header[19],
    ]) as usize;

    let max = max_value_for_width(elem_width);
    let w = elem_width as usize;
    let expected_values = (raw_len
        .checked_sub(tail_len)
        .ok_or(PackError::Corrupt("raw length smaller than tail"))?)
        / w;
    if raw_len % w != tail_len % w || expected_values.div_ceil(CHUNK_VALUES) != n_chunks {
        return Err(PackError::Corrupt("chunk count inconsistent with length"));
    }

    let mut values: Vec<u32> = Vec::with_capacity(expected_values);
    let mut pos = HEADER_LEN;
    for _ in 0..n_chunks {
        chunk::decode_chunk(data, &mut pos, max, &mut values)?;
    }
    if values.len() != expected_values {
        return Err(PackError::Corrupt("decoded value count mismatch"));
    }
    let tail = data.get(pos..pos + tail_len).ok_or(PackError::Truncated)?;
    if pos + tail_len != data.len() {
        return Err(PackError::Corrupt("trailing garbage after stream"));
    }

    let mut out = Vec::with_capacity(raw_len);
    if w == 1 {
        out.extend(values.iter().map(|&v| v as u8));
    } else {
        for &v in &values {
            out.extend_from_slice(&(v as u16).to_le_bytes());
        }
    }
    out.extend_from_slice(tail);
    Ok(out)
}

/// Compressed size of `data` under [`pack`] without keeping the output —
/// used by container layers to trial-encode a sample slice when choosing
/// an encoding.
pub fn packed_len(data: &[u8], elem_width: u8) -> Result<usize, PackError> {
    pack(data, elem_width).map(|v| v.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream() {
        for w in [1u8, 2] {
            let p = pack(&[], w).unwrap();
            assert_eq!(unpack(&p).unwrap(), Vec::<u8>::new());
        }
    }

    #[test]
    fn odd_length_width_two_keeps_tail() {
        let data = vec![1u8, 2, 3, 4, 5];
        let p = pack(&data, 2).unwrap();
        assert_eq!(unpack(&p).unwrap(), data);
    }

    #[test]
    fn multi_chunk_roundtrip() {
        let data: Vec<u8> = (0..(CHUNK_VALUES * 2 + 100))
            .map(|i| (i % 251) as u8)
            .collect();
        let p = pack(&data, 1).unwrap();
        assert_eq!(unpack(&p).unwrap(), data);
    }

    #[test]
    fn smooth_f16_like_data_compresses_well() {
        // Little-endian u16 ramp with small jitter — the shape of a
        // quantized smooth field.
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            let v = (1000 + i / 10 + (i % 3)) as u16;
            data.extend_from_slice(&v.to_le_bytes());
        }
        let p = pack(&data, 2).unwrap();
        assert!(
            p.len() < data.len() / 4,
            "packed {} of {}",
            p.len(),
            data.len()
        );
        assert_eq!(unpack(&p).unwrap(), data);
    }

    #[test]
    fn bad_width_is_rejected() {
        assert_eq!(pack(&[0; 8], 4), Err(PackError::BadElemWidth(4)));
        assert_eq!(pack(&[0; 8], 0), Err(PackError::BadElemWidth(0)));
    }

    #[test]
    fn bad_magic_and_version() {
        let mut p = pack(&[1, 2, 3], 1).unwrap();
        let mut q = p.clone();
        q[0] = b'X';
        assert_eq!(unpack(&q), Err(PackError::BadMagic));
        // Version flip also breaks the header CRC; repair it to hit the
        // version check specifically.
        p[4] = 99;
        let crc = sciml_compress::crc32::crc32(&p[..HEADER_LEN - 4]);
        p[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(unpack(&p), Err(PackError::BadVersion(99)));
    }

    #[test]
    fn header_bit_flip_is_checksum_error() {
        let mut p = pack(&[1, 2, 3, 4], 1).unwrap();
        p[8] ^= 0x40;
        assert!(matches!(
            unpack(&p),
            Err(PackError::ChecksumMismatch { .. })
        ));
    }
}
