//! Byte-oriented range coder (Subbotin/LZMA lineage) over a static
//! frequency model.
//!
//! The encoder keeps a 33-bit `low` so a pending carry is visible in bit
//! 32; `shift_low` propagates it through the cached byte and any run of
//! 0xFF bytes before emitting. The decoder mirrors the arithmetic with a
//! 32-bit window (`code`) over the byte stream, renormalizing whenever
//! `range` drops below 2^24 — the same top threshold the encoder uses, so
//! both sides narrow their intervals in lockstep.
//!
//! Frequencies are quantized to a fixed total of [`TOTAL`] (a power of
//! two) so the interval split is a shift, not a division.

use crate::PackError;

/// log2 of the frequency total every model is normalized to.
pub const TOTAL_BITS: u32 = 12;
/// Sum of all symbol frequencies after quantization.
pub const TOTAL: u32 = 1 << TOTAL_BITS;
/// Renormalization threshold: encoder and decoder emit/consume a byte
/// whenever `range` falls below this.
const TOP: u32 = 1 << 24;

/// Carry-propagating range encoder writing to an owned byte vector.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    /// Number of buffered bytes awaiting a carry decision (the cached
    /// byte plus a run of 0xFF bytes that a carry would turn into 0x00).
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Fresh encoder. The first emitted byte is always the zero cache
    /// byte; the decoder's 5-byte priming read absorbs it.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    /// Narrows the interval to the symbol occupying `[cum, cum + freq)`
    /// of the [`TOTAL`]-wide frequency line. `freq` must be non-zero and
    /// `cum + freq <= TOTAL`.
    #[inline]
    pub fn encode(&mut self, cum: u32, freq: u32) {
        let r = self.range >> TOTAL_BITS;
        self.low += (r as u64) * (cum as u64);
        self.range = r * freq;
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > u32::MAX as u64 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & u32::MAX as u64;
    }

    /// Flushes the interval state and returns the coded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder over a byte slice. Reads past the end of the stream
/// return zero bytes and latch an overrun flag instead of failing per
/// call — the per-symbol hot loop stays `Result`-free and the caller
/// checks [`RangeDecoder::overrun`] once after draining the chunk, so a
/// truncated stream still surfaces as [`PackError::Truncated`], never a
/// panic or an accepted decode.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    range: u32,
    code: u32,
    overrun: bool,
}

impl<'a> RangeDecoder<'a> {
    /// Primes the decoder window with the first five coded bytes (the
    /// leading zero cache byte plus four payload bytes).
    pub fn new(data: &'a [u8]) -> Result<Self, PackError> {
        if data.len() < 5 {
            return Err(PackError::Truncated);
        }
        let mut d = Self {
            data,
            pos: 0,
            range: u32::MAX,
            code: 0,
            overrun: false,
        };
        for _ in 0..5 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        Ok(d)
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        match self.data.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                b
            }
            None => {
                self.overrun = true;
                0
            }
        }
    }

    /// True when the decoder has read past the end of its input; the
    /// symbols decoded after that point are garbage and the caller must
    /// report truncation.
    #[inline]
    pub fn overrun(&self) -> bool {
        self.overrun
    }

    /// Returns the position of the current code on the [`TOTAL`]-wide
    /// frequency line; the caller maps it to a symbol via its cumulative
    /// table, then must call [`Self::decode_update`].
    #[inline]
    pub fn decode_target(&self) -> u32 {
        let r = self.range >> TOTAL_BITS;
        ((self.code / r) as u64).min((TOTAL - 1) as u64) as u32
    }

    /// Consumes the symbol occupying `[cum, cum + freq)`, mirroring the
    /// encoder's interval narrowing. `freq` must be non-zero (renormal-
    /// ization would otherwise never terminate); the chunk decoder
    /// guarantees it by mapping targets through bins with `freq >= 1`.
    #[inline]
    pub fn decode_update(&mut self, cum: u32, freq: u32) {
        let r = self.range >> TOTAL_BITS;
        self.code = self.code.wrapping_sub(r.wrapping_mul(cum));
        self.range = r * freq;
        while self.range < TOP {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[usize], freqs: &[u32]) {
        let cum: Vec<u32> = freqs
            .iter()
            .scan(0u32, |acc, &f| {
                let c = *acc;
                *acc += f;
                Some(c)
            })
            .collect();
        assert_eq!(freqs.iter().sum::<u32>(), TOTAL);

        let mut enc = RangeEncoder::new();
        for &s in symbols {
            enc.encode(cum[s], freqs[s]);
        }
        let bytes = enc.finish();

        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &expect in symbols {
            let t = dec.decode_target();
            let sym = cum.partition_point(|&c| c <= t) - 1;
            assert_eq!(sym, expect);
            dec.decode_update(cum[sym], freqs[sym]);
        }
        assert!(!dec.overrun());
    }

    #[test]
    fn uniform_symbols() {
        let freqs = vec![TOTAL / 4; 4];
        let syms: Vec<usize> = (0..10_000).map(|i| i % 4).collect();
        roundtrip(&syms, &freqs);
    }

    #[test]
    fn skewed_symbols() {
        // 99%/rare split exercises long carry runs.
        let freqs = vec![TOTAL - 3, 1, 1, 1];
        let mut syms = vec![0usize; 50_000];
        for i in (0..syms.len()).step_by(997) {
            syms[i] = 1 + (i / 997) % 3;
        }
        roundtrip(&syms, &freqs);
    }

    #[test]
    fn single_symbol_model() {
        let freqs = vec![TOTAL];
        let syms = vec![0usize; 1000];
        roundtrip(&syms, &freqs);
    }

    #[test]
    fn truncated_stream_is_typed_error() {
        let mut enc = RangeEncoder::new();
        let freqs = [TOTAL / 2, TOTAL / 2];
        for i in 0..1000 {
            enc.encode((i % 2) * (TOTAL / 2), freqs[(i % 2) as usize]);
        }
        let bytes = enc.finish();
        assert_eq!(
            RangeDecoder::new(&bytes[..3]).unwrap_err(),
            PackError::Truncated
        );
        let mut dec = RangeDecoder::new(&bytes[..bytes.len() / 2]).unwrap();
        for _ in 0..1000 {
            let t = dec.decode_target();
            let (cum, f) = if t < TOTAL / 2 {
                (0, freqs[0])
            } else {
                (TOTAL / 2, freqs[1])
            };
            dec.decode_update(cum, f);
        }
        assert!(dec.overrun(), "half the stream must latch the overrun flag");
    }
}
