//! Property tests for the chunked compressor: bit-exact round-trips for
//! every supported element width (u8, i16-as-LE-bytes, f16-as-LE-bytes
//! are all just width-1/width-2 byte streams), plus failure injection —
//! truncation at every byte offset and single-bit flips anywhere in the
//! stream must produce a typed [`PackError`], never a panic and never a
//! silently wrong decode.

use proptest::prelude::*;
use sciml_pack::{pack, unpack, PackError, CHUNK_VALUES};

fn widths() -> impl Strategy<Value = u8> {
    prop_oneof![Just(1u8), Just(2u8)]
}

/// Structured generators shaped like the real workloads.
fn workload_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes (u8 streams, deepcam code streams).
        prop::collection::vec(any::<u8>(), 0..4096),
        // Smooth u16 ramps with jitter (quantized f16 fields).
        (0u16..1024, 1usize..1500, 0u16..8).prop_map(|(base, n, jitter)| {
            let mut out = Vec::with_capacity(n * 2);
            for i in 0..n {
                let v = base
                    .wrapping_add((i / 7) as u16)
                    .wrapping_add((i as u16).wrapping_mul(jitter) % 5);
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }),
        // Signed i16 oscillation around zero, stored little-endian.
        (1usize..1500, 1i16..300).prop_map(|(n, amp)| {
            let mut out = Vec::with_capacity(n * 2);
            for i in 0..n {
                let v = if i % 2 == 0 { amp } else { -amp } + (i % 11) as i16;
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }),
        // Constant runs (masks, padded regions).
        (any::<u8>(), 0usize..5000).prop_map(|(b, n)| vec![b; n]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_is_bit_exact(data in workload_bytes(), width in widths()) {
        let packed = pack(&data, width).unwrap();
        prop_assert_eq!(unpack(&packed).unwrap(), data);
    }

    #[test]
    fn truncation_at_any_point_is_typed_error(data in workload_bytes(), width in widths(), frac in 0.0f64..1.0) {
        let packed = pack(&data, width).unwrap();
        let cut = ((packed.len() as f64) * frac) as usize;
        if cut < packed.len() {
            match unpack(&packed[..cut]) {
                Err(_) => {}
                // A cut exactly at the tail boundary of a width-2 stream
                // with a raw tail byte can still be complete; anything
                // else must error.
                Ok(v) => prop_assert_eq!(v, data),
            }
        }
    }

    #[test]
    fn bit_flip_anywhere_never_panics_or_lies(
        data in workload_bytes(),
        width in widths(),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let packed = pack(&data, width).unwrap();
        if packed.is_empty() { return Ok(()); }
        let mut bad = packed.clone();
        let pos = ((bad.len() - 1) as f64 * pos_frac) as usize;
        bad[pos] ^= 1 << bit;
        match unpack(&bad) {
            Err(_) => {}
            // CRC-32 cannot miss a single-bit flip within one covered
            // region, so an Ok decode can only come from a flip in a
            // raw tail byte — and then the output differs only there.
            Ok(v) => prop_assert_eq!(v.len(), data.len()),
        }
    }

    #[test]
    fn garbage_input_never_panics(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = unpack(&data);
    }

    #[test]
    fn single_value_streams(width in widths(), b in any::<u16>()) {
        let data: Vec<u8> = if width == 1 {
            vec![b as u8]
        } else {
            b.to_le_bytes().to_vec()
        };
        let packed = pack(&data, width).unwrap();
        prop_assert_eq!(unpack(&packed).unwrap(), data);
    }
}

/// Exhaustive truncation: every prefix of a small real stream errors (or,
/// for the rare complete-prefix case, decodes to the original).
#[test]
fn truncation_at_every_byte() {
    let data: Vec<u8> = (0..900u32)
        .flat_map(|i| ((i * 7 % 1024) as u16).to_le_bytes())
        .collect();
    let packed = pack(&data, 2).unwrap();
    for cut in 0..packed.len() {
        match unpack(&packed[..cut]) {
            Err(_) => {}
            Ok(v) => assert_eq!(v, data, "prefix of {cut} bytes decoded differently"),
        }
    }
}

/// Exhaustive single-bit flips over a small stream: typed error or (for
/// flips in the uncovered raw tail) a same-length decode.
#[test]
fn bit_flip_at_every_position() {
    let mut data: Vec<u8> = (0..400u32)
        .flat_map(|i| ((i % 300) as u16).to_le_bytes())
        .collect();
    data.push(0xAA); // force a raw tail byte
    let packed = pack(&data, 2).unwrap();
    for pos in 0..packed.len() {
        for bit in 0..8 {
            let mut bad = packed.clone();
            bad[pos] ^= 1 << bit;
            match unpack(&bad) {
                Err(_) => {}
                Ok(v) => {
                    assert_eq!(v.len(), data.len());
                    assert_eq!(pos, packed.len() - 1, "non-tail flip at {pos} decoded Ok");
                }
            }
        }
    }
}

#[test]
fn empty_and_chunk_boundary_streams() {
    for width in [1u8, 2] {
        for n in [
            0usize,
            1,
            2,
            CHUNK_VALUES - 1,
            CHUNK_VALUES,
            CHUNK_VALUES + 1,
        ] {
            let data: Vec<u8> = (0..n * width as usize).map(|i| (i % 253) as u8).collect();
            let packed = pack(&data, width).unwrap();
            assert_eq!(unpack(&packed).unwrap(), data, "width {width} n {n}");
        }
    }
}

#[test]
fn error_variants_are_distinguishable() {
    assert_eq!(unpack(&[]), Err(PackError::Truncated));
    let mut p = pack(&[1, 2, 3], 1).unwrap();
    p[1] = b'Z';
    assert_eq!(unpack(&p), Err(PackError::BadMagic));
}
