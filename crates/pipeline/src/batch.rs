//! Batches delivered to the training loop.

use crate::pool::PooledTensor;
use sciml_half::F16;

/// A sample's training label.
#[derive(Debug, Clone, PartialEq)]
pub enum Label {
    /// CosmoFlow regression target (Ωm, σ8, n_s, h).
    Cosmo([f32; 4]),
    /// DeepCAM per-pixel segmentation mask.
    Mask(Vec<u8>),
}

/// A batch of decoded FP16 samples in sample-major layout.
///
/// The tensor is pool-backed: dropping the batch returns its buffer to
/// the [`crate::pool::BufferPool`] it was checked out of (or frees it,
/// for unpooled batches). Deliberately neither `Clone` nor cheaply
/// copyable — a batch is tens of megabytes at paper scale, and the
/// zero-copy path exists so it is written exactly once.
#[derive(Debug, PartialEq)]
pub struct Batch {
    /// Concatenated sample tensors (`batch × values_per_sample`).
    pub data: PooledTensor,
    /// Values per sample.
    pub sample_len: usize,
    /// One label per sample.
    pub labels: Vec<Label>,
    /// Dataset indices of the samples (for exactly-once accounting).
    pub indices: Vec<usize>,
    /// Epoch this batch belongs to.
    pub epoch: usize,
}

impl Batch {
    /// Samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the batch carries no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The tensor of sample `i`.
    pub fn sample(&self, i: usize) -> &[F16] {
        &self.data[i * self.sample_len..(i + 1) * self.sample_len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accessors() {
        let b = Batch {
            data: vec![F16::ONE; 6].into(),
            sample_len: 3,
            labels: vec![Label::Cosmo([0.3, 0.8, 0.96, 0.7]); 2],
            indices: vec![4, 9],
            epoch: 1,
        };
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.sample(1).len(), 3);
    }
}
