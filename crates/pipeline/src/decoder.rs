//! Decoder plugins: baseline, gzip-baseline, CPU plugin, GPU plugin —
//! for each of the two workloads. These are the six bars of Figs. 8/10.

use crate::batch::Label;
use crate::{PipelineError, Result};
use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_compress::Level;
use sciml_data::serialize;
use sciml_gpusim::{decode_cosmo, decode_deepcam, Gpu};
use sciml_half::F16;
use std::sync::atomic::{AtomicU64, Ordering};

/// A decoded, preprocessed, FP16 sample ready for batching.
///
/// Deliberately not `Clone`: a sample tensor is megabytes at paper
/// scale, and the pipeline's zero-copy path never duplicates one.
#[derive(Debug, PartialEq)]
pub struct DecodedSample {
    /// Channel-major FP16 tensor.
    pub data: Vec<F16>,
    /// Training label.
    pub label: Label,
}

/// The plugin interface the pipeline's decode pool calls.
pub trait DecoderPlugin: Send + Sync {
    /// Decodes one sample's bytes into a training-ready tensor.
    fn decode(&self, bytes: &[u8]) -> Result<DecodedSample>;

    /// Decodes one sample directly into `out` (a slot of a pooled batch
    /// tensor), returning only the label. `out` must be exactly the
    /// sample length; a mismatch is a typed error, never a panic, and
    /// on success every slot of `out` is written.
    ///
    /// The default implementation falls back to [`DecoderPlugin::decode`]
    /// plus a copy, so external plugins keep working unchanged; the
    /// built-in plugins all decode in place.
    fn decode_into(&self, bytes: &[u8], out: &mut [F16]) -> Result<Label> {
        let d = self.decode(bytes)?;
        if d.data.len() != out.len() {
            return Err(
                sciml_codec::CodecError::Inconsistent("output slice length mismatch").into(),
            );
        }
        out.copy_from_slice(&d.data);
        Ok(d.label)
    }

    /// Human-readable name (for stats and figures).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------
// CosmoFlow plugins
// ---------------------------------------------------------------------

/// Baseline: uncompressed f32 TFRecord payload, per-voxel op on the CPU.
pub struct CosmoBaseline {
    /// Preprocessing operator (the benchmark uses `Log1p`).
    pub op: Op,
}

impl DecoderPlugin for CosmoBaseline {
    fn decode(&self, bytes: &[u8]) -> Result<DecodedSample> {
        let sample = serialize::cosmo_from_payload(bytes)?;
        let data = cf::baseline_preprocess(&sample, self.op);
        Ok(DecodedSample {
            data,
            label: Label::Cosmo(sample.label.as_array()),
        })
    }

    fn decode_into(&self, bytes: &[u8], out: &mut [F16]) -> Result<Label> {
        let sample = serialize::cosmo_from_payload(bytes)?;
        cf::baseline_preprocess_into(&sample, self.op, out)?;
        Ok(Label::Cosmo(sample.label.as_array()))
    }

    fn name(&self) -> &'static str {
        "cosmo-baseline"
    }
}

/// gzip baseline: the payload is gzip-compressed; decompression happens
/// on the host CPU (there is no GPU gunzip), then the baseline path runs.
pub struct CosmoGzip {
    /// Preprocessing operator.
    pub op: Op,
}

impl CosmoGzip {
    /// Prepares a gzip-compressed payload (dataset preparation helper).
    pub fn compress_payload(payload: &[u8]) -> Vec<u8> {
        sciml_compress::gzip_compress(payload, Level::Default)
    }
}

impl DecoderPlugin for CosmoGzip {
    fn decode(&self, bytes: &[u8]) -> Result<DecodedSample> {
        let payload = sciml_compress::gzip_decompress(bytes)?;
        let sample = serialize::cosmo_from_payload(&payload)?;
        let data = cf::baseline_preprocess(&sample, self.op);
        Ok(DecodedSample {
            data,
            label: Label::Cosmo(sample.label.as_array()),
        })
    }

    fn decode_into(&self, bytes: &[u8], out: &mut [F16]) -> Result<Label> {
        // The decompressed payload is still an allocation (there is no
        // streaming gunzip), but the tensor itself decodes in place.
        let payload = sciml_compress::gzip_decompress(bytes)?;
        let sample = serialize::cosmo_from_payload(&payload)?;
        cf::baseline_preprocess_into(&sample, self.op, out)?;
        Ok(Label::Cosmo(sample.label.as_array()))
    }

    fn name(&self) -> &'static str {
        "cosmo-gzip"
    }
}

/// CPU plugin: custom LUT encoding with fused op, decoded in parallel.
pub struct CosmoPluginCpu {
    /// Preprocessing operator (fused into the table).
    pub op: Op,
}

impl DecoderPlugin for CosmoPluginCpu {
    fn decode(&self, bytes: &[u8]) -> Result<DecodedSample> {
        let enc = cf::EncodedCosmo::from_bytes(bytes)?;
        let data = cf::decode_parallel(&enc, self.op)?;
        Ok(DecodedSample {
            data,
            label: Label::Cosmo(enc.label),
        })
    }

    fn decode_into(&self, bytes: &[u8], out: &mut [F16]) -> Result<Label> {
        let enc = cf::EncodedCosmo::from_bytes(bytes)?;
        cf::decode_parallel_into(&enc, self.op, out)?;
        Ok(Label::Cosmo(enc.label))
    }

    fn name(&self) -> &'static str {
        "cosmo-plugin-cpu"
    }
}

/// GPU plugin: the same encoding decoded on the SIMT simulator; the
/// simulated device time accumulates for the platform model.
pub struct CosmoPluginGpu {
    /// Simulated device.
    pub gpu: Gpu,
    /// Preprocessing operator (fused).
    pub op: Op,
    /// Accumulated simulated device nanoseconds.
    pub device_ns: AtomicU64,
}

impl CosmoPluginGpu {
    /// Creates a GPU plugin over a simulated device.
    pub fn new(gpu: Gpu, op: Op) -> Self {
        Self {
            gpu,
            op,
            device_ns: AtomicU64::new(0),
        }
    }

    /// Simulated device time spent decoding, in seconds.
    pub fn device_seconds(&self) -> f64 {
        self.device_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

impl DecoderPlugin for CosmoPluginGpu {
    fn decode(&self, bytes: &[u8]) -> Result<DecodedSample> {
        let enc = cf::EncodedCosmo::from_bytes(bytes)?;
        let (data, _, time) = decode_cosmo(&self.gpu, &enc, self.op)?;
        self.device_ns
            .fetch_add((time * 1e9) as u64, Ordering::Relaxed);
        Ok(DecodedSample {
            data,
            label: Label::Cosmo(enc.label),
        })
    }

    fn decode_into(&self, bytes: &[u8], out: &mut [F16]) -> Result<Label> {
        let enc = cf::EncodedCosmo::from_bytes(bytes)?;
        let (_, time) = sciml_gpusim::decode_cosmo_into(&self.gpu, &enc, self.op, out)?;
        self.device_ns
            .fetch_add((time * 1e9) as u64, Ordering::Relaxed);
        Ok(Label::Cosmo(enc.label))
    }

    fn name(&self) -> &'static str {
        "cosmo-plugin-gpu"
    }
}

// ---------------------------------------------------------------------
// DeepCAM plugins
// ---------------------------------------------------------------------

/// Baseline: h5lite (HDF5 stand-in) f32 data, per-pixel normalize on the
/// host, cast to FP16.
pub struct DeepCamBaseline {
    /// Per-channel normalization operator.
    pub op: Op,
}

impl DecoderPlugin for DeepCamBaseline {
    fn decode(&self, bytes: &[u8]) -> Result<DecodedSample> {
        let sample = serialize::deepcam_from_h5(bytes)?;
        let data = sample
            .data
            .iter()
            .map(|&v| F16::from_f32(self.op.apply(v)))
            .collect();
        Ok(DecodedSample {
            data,
            label: Label::Mask(sample.mask),
        })
    }

    fn decode_into(&self, bytes: &[u8], out: &mut [F16]) -> Result<Label> {
        let sample = serialize::deepcam_from_h5(bytes)?;
        if sample.data.len() != out.len() {
            return Err(
                sciml_codec::CodecError::Inconsistent("output slice length mismatch").into(),
            );
        }
        for (o, &v) in out.iter_mut().zip(&sample.data) {
            *o = F16::from_f32(self.op.apply(v));
        }
        Ok(Label::Mask(sample.mask))
    }

    fn name(&self) -> &'static str {
        "deepcam-baseline"
    }
}

/// gzip-compressed h5lite baseline.
pub struct DeepCamGzip {
    /// Per-channel normalization operator.
    pub op: Op,
}

impl DecoderPlugin for DeepCamGzip {
    fn decode(&self, bytes: &[u8]) -> Result<DecodedSample> {
        let payload = sciml_compress::gzip_decompress(bytes)?;
        DeepCamBaseline { op: self.op }.decode(&payload)
    }

    fn decode_into(&self, bytes: &[u8], out: &mut [F16]) -> Result<Label> {
        let payload = sciml_compress::gzip_decompress(bytes)?;
        DeepCamBaseline { op: self.op }.decode_into(&payload, out)
    }

    fn name(&self) -> &'static str {
        "deepcam-gzip"
    }
}

/// CPU plugin: differential codec decoded with one rayon task per line.
pub struct DeepCamPluginCpu {
    /// Fused operator applied at emission.
    pub op: Op,
}

impl DecoderPlugin for DeepCamPluginCpu {
    fn decode(&self, bytes: &[u8]) -> Result<DecodedSample> {
        let enc = dc::EncodedDeepCam::from_bytes(bytes)?;
        let mask = enc.mask.clone();
        let data = dc::decode_parallel(&enc, self.op)?;
        Ok(DecodedSample {
            data,
            label: Label::Mask(mask),
        })
    }

    fn decode_into(&self, bytes: &[u8], out: &mut [F16]) -> Result<Label> {
        let enc = dc::EncodedDeepCam::from_bytes(bytes)?;
        dc::decode_parallel_into(&enc, self.op, out)?;
        Ok(Label::Mask(enc.mask))
    }

    fn name(&self) -> &'static str {
        "deepcam-plugin-cpu"
    }
}

/// GPU plugin: differential codec on the SIMT simulator.
pub struct DeepCamPluginGpu {
    /// Simulated device.
    pub gpu: Gpu,
    /// Fused operator.
    pub op: Op,
    /// Accumulated simulated device nanoseconds.
    pub device_ns: AtomicU64,
}

impl DeepCamPluginGpu {
    /// Creates a GPU plugin over a simulated device.
    pub fn new(gpu: Gpu, op: Op) -> Self {
        Self {
            gpu,
            op,
            device_ns: AtomicU64::new(0),
        }
    }

    /// Simulated device time spent decoding, in seconds.
    pub fn device_seconds(&self) -> f64 {
        self.device_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

impl DecoderPlugin for DeepCamPluginGpu {
    fn decode(&self, bytes: &[u8]) -> Result<DecodedSample> {
        let enc = dc::EncodedDeepCam::from_bytes(bytes)?;
        let mask = enc.mask.clone();
        let (data, _, time) = decode_deepcam(&self.gpu, &enc, self.op)?;
        self.device_ns
            .fetch_add((time * 1e9) as u64, Ordering::Relaxed);
        Ok(DecodedSample {
            data,
            label: Label::Mask(mask),
        })
    }

    fn decode_into(&self, bytes: &[u8], out: &mut [F16]) -> Result<Label> {
        let enc = dc::EncodedDeepCam::from_bytes(bytes)?;
        let (_, time) = sciml_gpusim::decode_deepcam_into(&self.gpu, &enc, self.op, out)?;
        self.device_ns
            .fetch_add((time * 1e9) as u64, Ordering::Relaxed);
        Ok(Label::Mask(enc.mask))
    }

    fn name(&self) -> &'static str {
        "deepcam-plugin-gpu"
    }
}

/// Validates that a plugin family produces consistent outputs: used by
/// integration tests to confirm baseline and plugin paths agree where
/// they must.
pub fn assert_same_shape(a: &DecodedSample, b: &DecodedSample) -> Result<()> {
    if a.data.len() != b.data.len() {
        return Err(PipelineError::Config("decoded sample shapes differ"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
    use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
    use sciml_gpusim::GpuSpec;

    fn cosmo_payloads() -> (Vec<u8>, Vec<u8>, Vec<u8>) {
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0);
        let raw = serialize::cosmo_to_payload(&s);
        let gz = CosmoGzip::compress_payload(&raw);
        let enc = cf::encode(&s).to_bytes();
        (raw, gz, enc)
    }

    #[test]
    fn cosmo_plugins_agree_bitwise() {
        let (raw, gz, enc) = cosmo_payloads();
        let op = Op::Log1p;
        let base = CosmoBaseline { op }.decode(&raw).unwrap();
        let gzip = CosmoGzip { op }.decode(&gz).unwrap();
        let cpu = CosmoPluginCpu { op }.decode(&enc).unwrap();
        let gpu = CosmoPluginGpu::new(Gpu::new(GpuSpec::V100), op)
            .decode(&enc)
            .unwrap();
        assert_eq!(base, gzip);
        assert_eq!(
            base.data, cpu.data,
            "fused CPU plugin must be bit-identical"
        );
        assert_eq!(base.data, gpu.data, "GPU plugin must be bit-identical");
        assert_eq!(base.label, cpu.label);
    }

    #[test]
    fn cosmo_encoded_is_smaller_than_raw_and_gzip_decodes_on_cpu_only() {
        let (raw, gz, enc) = cosmo_payloads();
        assert!(
            enc.len() * 3 < raw.len(),
            "enc {} raw {}",
            enc.len(),
            raw.len()
        );
        // gzip is also smaller but must round-trip through the CPU path.
        assert!(gz.len() < raw.len());
    }

    #[test]
    fn deepcam_plugins_roundtrip_and_masks_survive() {
        let s = ClimateGenerator::new(DeepCamConfig::test_small()).generate(0);
        let h5 = serialize::deepcam_to_h5(&s).unwrap();
        let op = Op::Identity;
        let base = DeepCamBaseline { op }.decode(&h5).unwrap();
        let gz = DeepCamGzip { op }
            .decode(&sciml_compress::gzip_compress(&h5, Level::Default))
            .unwrap();
        assert_eq!(base, gz);

        let (enc, _) = dc::encode(&s, &dc::EncoderConfig::default());
        let bytes = enc.to_bytes();
        let cpu = DeepCamPluginCpu { op }.decode(&bytes).unwrap();
        let gpu = DeepCamPluginGpu::new(Gpu::new(GpuSpec::A100), op)
            .decode(&bytes)
            .unwrap();
        assert_eq!(cpu.data, gpu.data);
        assert_eq!(cpu.label, Label::Mask(s.mask.clone()));
        assert_same_shape(&base, &cpu).unwrap();
    }

    #[test]
    fn gpu_plugins_accumulate_device_time() {
        let (_, _, enc) = cosmo_payloads();
        let plugin = CosmoPluginGpu::new(Gpu::new(GpuSpec::V100), Op::Log1p);
        plugin.decode(&enc).unwrap();
        plugin.decode(&enc).unwrap();
        assert!(plugin.device_seconds() > 0.0);
    }

    #[test]
    fn corrupt_bytes_error_cleanly() {
        assert!(CosmoBaseline { op: Op::Log1p }.decode(b"junk").is_err());
        assert!(CosmoGzip { op: Op::Log1p }.decode(b"junk").is_err());
        assert!(CosmoPluginCpu { op: Op::Log1p }.decode(b"junk").is_err());
        assert!(DeepCamBaseline { op: Op::Identity }
            .decode(b"junk")
            .is_err());
        assert!(DeepCamPluginCpu { op: Op::Identity }
            .decode(b"junk")
            .is_err());
    }
}
