//! DALI-like data-loading pipeline (paper §VI).
//!
//! The paper integrates its decoders as NVIDIA DALI plugins so "only the
//! data feeding module in both applications needs to be modified". This
//! crate is the equivalent substrate: a multi-threaded, prefetching
//! loader with pluggable per-sample decoders:
//!
//! * [`source`] — where encoded bytes come from: in-memory, a directory
//!   of files, or a staged (copy-to-local) wrapper mirroring NVMe
//!   staging;
//! * [`decoder`] — the plugin interface plus the eight concrete plugins
//!   the evaluation uses (baseline / gzip / CPU-plugin / GPU-plugin, for
//!   each of CosmoFlow and DeepCAM);
//! * [`pipeline`] — reader threads → bounded prefetch queue → decoder
//!   pool → batcher, with per-stage wall-time instrumentation;
//! * [`batch`] — the FP16 batches handed to the training loop.
//!
//! Every sample is delivered exactly once per epoch (shuffled), and the
//! pipeline's stage overlap is real: readers, decoders and the consumer
//! run concurrently on OS threads connected by bounded crossbeam
//! channels.

pub mod batch;
pub mod decoder;
pub mod pipeline;
pub mod pool;
pub mod source;
pub mod stats;

pub use batch::{Batch, Label};
pub use decoder::{DecodedSample, DecoderPlugin};
pub use pipeline::{Pipeline, PipelineConfig};
pub use pool::{BufferPool, PooledBytes, PooledTensor};
pub use source::SampleSource;
pub use stats::PipelineStats;

use std::fmt;

/// Errors surfaced by the data-loading pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Fetching bytes from the source failed.
    Source(sciml_data::DataError),
    /// Decoding a sample failed.
    Decode(sciml_codec::CodecError),
    /// Compressed payload failed to decompress.
    Compression(sciml_compress::Error),
    /// Pipeline structure misuse (e.g. zero batch size).
    Config(&'static str),
    /// A worker thread disappeared (channel closed early).
    WorkerLost,
    /// A remote sample source failed (wire protocol, server error, or
    /// an exhausted retry budget).
    Remote(Box<dyn std::error::Error + Send + Sync>),
    /// A remote operation exceeded its deadline.
    Timeout(&'static str),
    /// The storage tier (packed shard store / staging) failed. Boxed so
    /// the storage crate can layer on top of the pipeline without a
    /// dependency cycle.
    Storage(Box<dyn std::error::Error + Send + Sync>),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Source(e) => write!(f, "source error: {e}"),
            PipelineError::Decode(e) => write!(f, "decode error: {e}"),
            PipelineError::Compression(e) => write!(f, "decompress error: {e}"),
            PipelineError::Config(w) => write!(f, "pipeline config error: {w}"),
            PipelineError::WorkerLost => write!(f, "pipeline worker lost"),
            PipelineError::Remote(e) => write!(f, "remote source error: {e}"),
            PipelineError::Timeout(what) => write!(f, "remote operation timed out: {what}"),
            PipelineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Source(e) => Some(e),
            PipelineError::Decode(e) => Some(e),
            PipelineError::Compression(e) => Some(e),
            PipelineError::Remote(e) => Some(e.as_ref()),
            PipelineError::Storage(e) => Some(e.as_ref()),
            PipelineError::Config(_) | PipelineError::WorkerLost | PipelineError::Timeout(_) => {
                None
            }
        }
    }
}

impl From<sciml_data::DataError> for PipelineError {
    fn from(e: sciml_data::DataError) -> Self {
        PipelineError::Source(e)
    }
}

impl From<sciml_codec::CodecError> for PipelineError {
    fn from(e: sciml_codec::CodecError) -> Self {
        PipelineError::Decode(e)
    }
}

impl From<sciml_compress::Error> for PipelineError {
    fn from(e: sciml_compress::Error) -> Self {
        PipelineError::Compression(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PipelineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(PipelineError::WorkerLost.to_string().contains("worker"));
        assert!(PipelineError::Config("bad").to_string().contains("bad"));
        assert!(PipelineError::Timeout("fetch")
            .to_string()
            .contains("fetch"));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error as _;
        let e = PipelineError::Source(sciml_data::DataError::Format("bad magic"));
        assert!(e
            .source()
            .expect("has cause")
            .to_string()
            .contains("bad magic"));

        let inner: Box<dyn std::error::Error + Send + Sync> = "link down".into();
        let e = PipelineError::Remote(inner);
        assert!(e
            .source()
            .expect("has cause")
            .to_string()
            .contains("link down"));

        assert!(PipelineError::WorkerLost.source().is_none());
        assert!(PipelineError::Timeout("x").source().is_none());
    }
}
