//! The prefetching pipeline: readers → decode pool → batch assembly →
//! consumer.
//!
//! Batch assembly is zero-copy: each work item's position within its
//! shuffled epoch determines its batch and its slot inside that batch,
//! so decode workers write samples straight into their slot of a pooled
//! batch tensor (see [`crate::pool`]) via
//! [`DecoderPlugin::decode_into`]. There is no batcher thread and no
//! per-sample intermediate `Vec` — whichever worker fills a batch's
//! last slot sends it.

use crate::batch::{Batch, Label};
use crate::decoder::DecoderPlugin;
use crate::pool::BufferPool;
use crate::source::SampleSource;
use crate::stats::PipelineStats;
use crate::{PipelineError, Result};
use crossbeam_channel as channel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sciml_codec::CodecError;
use sciml_half::F16;
use sciml_obs::{Telemetry, Tracer};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Upper bound on a sane pool capacity: beyond this the "pool" would be
/// an unbounded leak dressed up as a cache.
const MAX_POOL_CAPACITY: usize = 65_536;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Samples per batch.
    pub batch_size: usize,
    /// Reader threads pulling from the source.
    pub reader_threads: usize,
    /// Decoder threads running the plugin.
    pub decode_threads: usize,
    /// Bounded queue depth between stages (prefetch window).
    pub prefetch: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Shuffle seed; shuffling is per epoch (seed + epoch).
    pub seed: u64,
    /// Drop the final incomplete batch of an epoch (the frameworks'
    /// `drop_remainder` behaviour). When false, a short batch is emitted.
    pub drop_remainder: bool,
    /// Buffer-pool capacity: how many idle batch tensors / fetch
    /// buffers the pool retains for reuse. `None` (the default) derives
    /// `prefetch + 2`, enough for every in-flight batch plus the one
    /// the consumer holds; `Some(0)` disables pooling (every checkout
    /// allocates — the per-sample-alloc baseline).
    pub pool_capacity: Option<usize>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            batch_size: 4,
            reader_threads: 2,
            decode_threads: 2,
            prefetch: 8,
            epochs: 1,
            seed: 0,
            drop_remainder: false,
            pool_capacity: None,
        }
    }
}

impl PipelineConfig {
    /// The pool capacity this config resolves to.
    pub fn effective_pool_capacity(&self) -> usize {
        self.pool_capacity.unwrap_or(self.prefetch + 2)
    }
}

/// One in-flight batch being assembled in place. Decode workers write
/// disjoint sample slots of the pooled tensor through `base`; the
/// `meta` mutex serializes slot bookkeeping and publishes the slot
/// writes (release on unlock, acquire on lock) to whichever worker
/// observes the batch complete and finishes it.
struct BatchBuild {
    epoch: usize,
    batch_id: usize,
    /// Samples this batch will hold (`batch_size`, or the epoch tail).
    expected: usize,
    sample_len: usize,
    /// Base of the tensor's storage. Stable: the tensor is sized at
    /// checkout and never reallocated while the build is open.
    base: *mut F16,
    /// The pooled tensor itself, taken exactly once on completion.
    data: Mutex<Option<crate::pool::PooledTensor>>,
    meta: Mutex<BuildMeta>,
}

struct BuildMeta {
    labels: Vec<Option<Label>>,
    indices: Vec<usize>,
    filled: usize,
}

// SAFETY: `base` is only dereferenced via `slot_mut`, whose callers
// hold exclusive ownership of disjoint slots (each (epoch, pos) work
// item exists exactly once), and the pointee outlives the build (the
// tensor is held in `data` until completion).
unsafe impl Send for BatchBuild {}
// SAFETY: shared access is `&self`-safe for the same reason as Send
// above — all mutation through `base` targets caller-exclusive disjoint
// slots, and the `data`/`meta` fields are behind mutexes.
unsafe impl Sync for BatchBuild {}

impl BatchBuild {
    /// The mutable slot for sample `slot`.
    ///
    /// # Safety
    /// The caller must be the only writer of `slot` for this build's
    /// lifetime, and `slot < expected`. The pipeline guarantees both:
    /// the index generator emits each position exactly once.
    // The &self → &mut escape is the point: concurrent workers write
    // disjoint slots through the shared build (see the Send/Sync
    // SAFETY note above); exclusivity is the caller's obligation.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot_mut(&self, slot: usize) -> &mut [F16] {
        debug_assert!(slot < self.expected);
        std::slice::from_raw_parts_mut(self.base.add(slot * self.sample_len), self.sample_len)
    }

    /// Consumes the build into a deliverable batch. Caller must have
    /// observed `filled == expected` under the meta lock.
    fn finish(&self) -> Batch {
        let data = self
            .data
            .lock()
            .take()
            // lint:allow(no_panics): completion invariant — the last
            // worker to fill a slot finishes the build exactly once.
            .expect("batch finished exactly once");
        let mut meta = self.meta.lock();
        let labels = meta
            .labels
            .iter_mut()
            // lint:allow(no_panics): caller observed filled == expected
            // under the meta lock, so every label slot is Some.
            .map(|l| l.take().expect("every slot filled"))
            .collect();
        Batch {
            data,
            sample_len: self.sample_len,
            labels,
            indices: std::mem::take(&mut meta.indices),
            epoch: self.epoch,
        }
    }
}

/// Shared assembly state: the set of open builds plus the sample shape,
/// learned from the first decoded sample.
struct Assembler {
    batch_size: usize,
    n: usize,
    pool: Arc<BufferPool>,
    sample_len: OnceLock<usize>,
    open: Mutex<Vec<Arc<BatchBuild>>>,
}

impl Assembler {
    /// The build for `(epoch, batch_id)`, creating it (and checking a
    /// tensor out of the pool) on first touch.
    fn build_for(&self, epoch: usize, batch_id: usize, sample_len: usize) -> Arc<BatchBuild> {
        let mut open = self.open.lock();
        if let Some(b) = open
            .iter()
            .find(|b| b.epoch == epoch && b.batch_id == batch_id)
        {
            return Arc::clone(b);
        }
        let expected = self.batch_size.min(self.n - batch_id * self.batch_size);
        let mut tensor = self.pool.checkout_tensor(expected * sample_len);
        let base = tensor.as_mut_ptr();
        let b = Arc::new(BatchBuild {
            epoch,
            batch_id,
            expected,
            sample_len,
            base,
            data: Mutex::new(Some(tensor)),
            meta: Mutex::new(BuildMeta {
                // lint:allow(no_alloc_hot_loop): per-batch build metadata, not per-sample
                labels: vec![None; expected],
                // lint:allow(no_alloc_hot_loop): per-batch build metadata, not per-sample
                indices: vec![0; expected],
                filled: 0,
            }),
        });
        open.push(Arc::clone(&b));
        b
    }

    fn remove(&self, epoch: usize, batch_id: usize) {
        let mut open = self.open.lock();
        if let Some(i) = open
            .iter()
            .position(|b| b.epoch == epoch && b.batch_id == batch_id)
        {
            open.swap_remove(i);
        }
    }
}

/// Decodes one sample into its slot of the (epoch, batch_id) build,
/// in place. The sample shape is bootstrapped from the first decoded
/// sample — the only decode of a run that allocates a tensor; every
/// later sample goes through [`DecoderPlugin::decode_into`].
fn decode_into_slot(
    plugin: &dyn DecoderPlugin,
    bytes: &[u8],
    assembler: &Assembler,
    epoch: usize,
    batch_id: usize,
    slot: usize,
) -> Result<(Arc<BatchBuild>, Label)> {
    match assembler.sample_len.get() {
        Some(&sample_len) => {
            let build = assembler.build_for(epoch, batch_id, sample_len);
            // SAFETY: this work item is the unique writer of `slot`.
            let out = unsafe { build.slot_mut(slot) };
            let label = plugin.decode_into(bytes, out)?;
            Ok((build, label))
        }
        None => {
            let d = plugin.decode(bytes)?;
            let sample_len = *assembler.sample_len.get_or_init(|| d.data.len());
            if d.data.len() != sample_len {
                return Err(
                    CodecError::Inconsistent("sample length changed between samples").into(),
                );
            }
            let build = assembler.build_for(epoch, batch_id, sample_len);
            // SAFETY: this work item is the unique writer of `slot`.
            let out = unsafe { build.slot_mut(slot) };
            out.copy_from_slice(&d.data);
            Ok((build, d.label))
        }
    }
}

/// A running pipeline: iterate [`Pipeline::next_batch`] until `None`.
pub struct Pipeline {
    rx: Option<channel::Receiver<Result<Batch>>>,
    stats: Arc<PipelineStats>,
    pool: Arc<BufferPool>,
    tracer: Arc<Tracer>,
    workers: Vec<JoinHandle<()>>,
    finished: bool,
}

impl Pipeline {
    /// Launches the worker threads over a source and a decoder plugin,
    /// with private (untraced) telemetry. Use [`Pipeline::launch_with`]
    /// to record into a shared registry / tracer.
    pub fn launch(
        source: Arc<dyn SampleSource>,
        plugin: Arc<dyn DecoderPlugin>,
        cfg: PipelineConfig,
    ) -> Result<Self> {
        Self::launch_with(source, plugin, cfg, Telemetry::disabled())
    }

    /// Launches the worker threads, registering stage metrics in
    /// `telemetry.registry` (under `pipeline.*` names) and emitting
    /// `fetch`/`decode`/`batch`/`wait` spans to `telemetry.tracer` when
    /// it is enabled.
    pub fn launch_with(
        source: Arc<dyn SampleSource>,
        plugin: Arc<dyn DecoderPlugin>,
        cfg: PipelineConfig,
        telemetry: Telemetry,
    ) -> Result<Self> {
        if cfg.batch_size == 0 {
            return Err(PipelineError::Config("batch_size must be positive"));
        }
        if cfg.reader_threads == 0 || cfg.decode_threads == 0 {
            return Err(PipelineError::Config("need at least one thread per stage"));
        }
        if cfg.effective_pool_capacity() > MAX_POOL_CAPACITY {
            return Err(PipelineError::Config(
                "pool_capacity implausibly large (max 65536)",
            ));
        }
        let stats = PipelineStats::with_registry(&telemetry.registry);
        let pool = BufferPool::with_registry(cfg.effective_pool_capacity(), &telemetry.registry);
        let tracer = telemetry.tracer;
        let n = source.len();

        // Stage 1: index generator -> (epoch, position, index) work
        // items. The position within the shuffled epoch is the batch
        // schedule: batch `pos / batch_size`, slot `pos % batch_size` —
        // fixed at generation time, so downstream stages can run fully
        // out of order and the batch composition is still deterministic.
        let (idx_tx, idx_rx) = channel::bounded::<(usize, usize, usize)>(cfg.prefetch.max(1));
        // Stage 2: fetched bytes in recycled pool buffers.
        let (raw_tx, raw_rx) = channel::bounded::<(usize, usize, usize, crate::pool::PooledBytes)>(
            cfg.prefetch.max(1),
        );
        // Stage 3: assembled batches to the consumer. There is no
        // batcher thread: decode workers write samples into their batch
        // slot in place, and whichever worker completes a batch sends it.
        let (batch_tx, batch_rx) = channel::bounded::<Result<Batch>>(cfg.prefetch.max(1));

        let assembler = Arc::new(Assembler {
            batch_size: cfg.batch_size,
            n,
            pool: Arc::clone(&pool),
            sample_len: OnceLock::new(),
            open: Mutex::new(Vec::new()),
        });

        let mut workers = Vec::new();

        // Index generator thread: shuffled order, exactly once per epoch.
        {
            let cfg = cfg.clone();
            workers.push(std::thread::spawn(move || {
                for epoch in 0..cfg.epochs {
                    let mut order: Vec<usize> = (0..n).collect();
                    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(epoch as u64));
                    order.shuffle(&mut rng);
                    for (pos, idx) in order.into_iter().enumerate() {
                        if idx_tx.send((epoch, pos, idx)).is_err() {
                            return;
                        }
                    }
                }
            }));
        }

        // Reader threads: fetch bytes into recycled buffers.
        for _ in 0..cfg.reader_threads {
            let idx_rx = idx_rx.clone();
            let raw_tx = raw_tx.clone();
            let batch_tx = batch_tx.clone();
            let source = Arc::clone(&source);
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(&tracer);
            let pool = Arc::clone(&pool);
            workers.push(std::thread::spawn(move || {
                while let Ok((epoch, pos, idx)) = idx_rx.recv() {
                    let mut buf = pool.checkout_bytes();
                    // Each fetch roots a fresh trace: a remote source
                    // sees the installed context and propagates it over
                    // the wire, so server-side spans join this trace.
                    let fetched = {
                        let _span = tracer.span_root("pipeline", "fetch");
                        stats.fetch_ns.time(|| source.fetch_into(idx, &mut buf))
                    };
                    match fetched {
                        Ok(()) => {
                            stats.bytes.add(buf.len() as u64);
                            stats.samples.inc();
                            if raw_tx.send((epoch, pos, idx, buf)).is_err() {
                                return;
                            }
                            stats.raw_depth.set(raw_tx.len() as i64);
                        }
                        Err(e) => {
                            // Surface the typed error to the consumer;
                            // this run is over.
                            stats.fetch_errors.inc();
                            let _ = batch_tx.send(Err(e));
                            return;
                        }
                    }
                }
            }));
        }
        drop(idx_rx);
        drop(raw_tx);

        // Decoder threads: decode straight into the sample's slot of its
        // pooled batch tensor, then send the batch if it just completed.
        for _ in 0..cfg.decode_threads {
            let raw_rx = raw_rx.clone();
            let batch_tx = batch_tx.clone();
            let plugin = Arc::clone(&plugin);
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(&tracer);
            let assembler = Arc::clone(&assembler);
            let cfg = cfg.clone();
            workers.push(std::thread::spawn(move || {
                while let Ok((epoch, pos, idx, bytes)) = raw_rx.recv() {
                    let batch_id = pos / cfg.batch_size;
                    let slot = pos % cfg.batch_size;
                    let decoded = {
                        let _span = tracer.span("pipeline", "decode");
                        stats.decode_ns.time(|| {
                            decode_into_slot(&*plugin, &bytes, &assembler, epoch, batch_id, slot)
                        })
                    };
                    drop(bytes); // recycle the fetch buffer promptly
                    let (build, label) = match decoded {
                        Ok(v) => v,
                        Err(e) => {
                            stats.decode_errors.inc();
                            let _ = batch_tx.send(Err(e));
                            return;
                        }
                    };
                    let completed = {
                        let mut meta = build.meta.lock();
                        meta.labels[slot] = Some(label);
                        meta.indices[slot] = idx;
                        meta.filled += 1;
                        meta.filled == build.expected
                    };
                    if completed {
                        assembler.remove(epoch, batch_id);
                        if cfg.drop_remainder && build.expected < cfg.batch_size {
                            // Epoch tail under drop_remainder: never
                            // emitted; the tensor returns to the pool
                            // when the build drops.
                            continue;
                        }
                        let _span = tracer.span("pipeline", "batch");
                        let batch = build.finish();
                        stats.batches.inc();
                        if batch_tx.send(Ok(batch)).is_err() {
                            return;
                        }
                        stats.batch_depth.set(batch_tx.len() as i64);
                    }
                }
            }));
        }
        drop(raw_rx);
        drop(batch_tx);

        Ok(Self {
            rx: Some(batch_rx),
            stats,
            pool,
            tracer,
            workers,
            finished: false,
        })
    }

    /// Blocks for the next batch; `Ok(None)` when the run is complete.
    pub fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.finished {
            return Ok(None);
        }
        // lint:allow(no_panics): `rx` is Some from construction until
        // Drop takes it; no other code path clears it.
        let rx = self.rx.as_ref().expect("receiver alive until drop");
        let got = {
            let _span = self.tracer.span("pipeline", "wait");
            self.stats.wait_ns.time(|| rx.recv())
        };
        match got {
            Ok(Ok(b)) => Ok(Some(b)),
            Ok(Err(e)) => {
                self.finished = true;
                Err(e)
            }
            Err(_) => {
                self.finished = true;
                Ok(None)
            }
        }
    }

    /// Collects every batch of the run (convenience for tests/benches).
    pub fn collect_all(mut self) -> Result<(Vec<Batch>, Arc<PipelineStats>)> {
        let mut out = Vec::new();
        while let Some(b) = self.next_batch()? {
            out.push(b);
        }
        let stats = Arc::clone(&self.stats);
        Ok((out, stats))
    }

    /// Shared stats handle.
    pub fn stats(&self) -> Arc<PipelineStats> {
        Arc::clone(&self.stats)
    }

    /// The buffer pool backing batch tensors and fetch buffers (for
    /// hit-rate / resident-byte inspection).
    pub fn pool(&self) -> Arc<BufferPool> {
        Arc::clone(&self.pool)
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        // Disconnect the consumer side so every worker sees a closed
        // channel and exits (a blocked `send` returns Err once the
        // receiver is gone), then join them.
        self.finished = true;
        drop(self.rx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::CosmoPluginCpu;
    use crate::source::VecSource;
    use sciml_codec::cosmoflow as cf;
    use sciml_codec::Op;
    use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};

    fn tiny_dataset(n: usize) -> Arc<VecSource> {
        let mut cfg = CosmoFlowConfig::test_small();
        cfg.grid = 8;
        cfg.halos = 4;
        let g = UniverseGenerator::new(cfg);
        let blobs: Vec<Vec<u8>> = (0..n as u64)
            .map(|i| cf::encode(&g.generate(i)).to_bytes())
            .collect();
        Arc::new(VecSource::new(blobs))
    }

    fn run(n: usize, cfg: PipelineConfig) -> (Vec<Batch>, Arc<PipelineStats>) {
        let p = Pipeline::launch(
            tiny_dataset(n),
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            cfg,
        )
        .unwrap();
        p.collect_all().unwrap()
    }

    #[test]
    fn delivers_every_sample_exactly_once_per_epoch() {
        let cfg = PipelineConfig {
            batch_size: 3,
            epochs: 2,
            ..Default::default()
        };
        let (batches, stats) = run(10, cfg);
        assert_eq!(stats.sample_count(), 20);
        for epoch in 0..2 {
            let mut seen: Vec<usize> = batches
                .iter()
                .filter(|b| b.epoch == epoch)
                .flat_map(|b| b.indices.iter().copied())
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>(), "epoch {epoch}");
        }
    }

    #[test]
    fn batch_sizes_respected_with_tail() {
        let cfg = PipelineConfig {
            batch_size: 4,
            epochs: 1,
            ..Default::default()
        };
        let (batches, _) = run(10, cfg);
        let mut sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 4, 4]);
    }

    #[test]
    fn drop_remainder_drops_tail() {
        let cfg = PipelineConfig {
            batch_size: 4,
            epochs: 1,
            drop_remainder: true,
            ..Default::default()
        };
        let (batches, _) = run(10, cfg);
        assert!(batches.iter().all(|b| b.len() == 4));
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn shuffling_differs_between_epochs_and_is_seeded() {
        let cfg = PipelineConfig {
            batch_size: 16,
            epochs: 2,
            reader_threads: 1,
            decode_threads: 1,
            seed: 42,
            ..Default::default()
        };
        let (batches, _) = run(16, cfg.clone());
        let e0: Vec<usize> = batches[0].indices.clone();
        let e1: Vec<usize> = batches[1].indices.clone();
        assert_ne!(e0, e1, "epoch shuffles must differ");
        // Same seed reproduces the same order with single-threaded stages.
        let (batches2, _) = run(16, cfg);
        assert_eq!(batches2[0].indices, e0);
    }

    #[test]
    fn many_threads_still_exactly_once() {
        let cfg = PipelineConfig {
            batch_size: 5,
            epochs: 3,
            reader_threads: 4,
            decode_threads: 4,
            prefetch: 2,
            ..Default::default()
        };
        let (batches, stats) = run(17, cfg);
        assert_eq!(stats.sample_count(), 51);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 51);
    }

    #[test]
    fn decode_error_surfaces() {
        let src = Arc::new(VecSource::new(vec![b"garbage".to_vec()]));
        let tel = sciml_obs::Telemetry::disabled();
        let mut p = Pipeline::launch_with(
            src,
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig::default(),
            tel.clone(),
        )
        .unwrap();
        assert!(p.next_batch().is_err());
        // Subsequent calls return None, not hang.
        assert!(p.next_batch().unwrap().is_none());
        let snap = tel.registry.snapshot();
        assert_eq!(snap.counter("pipeline.decode_errors"), 1);
        assert_eq!(snap.counter("pipeline.fetch_errors"), 0);
    }

    /// Source that fails on one specific index.
    struct FlakySource {
        inner: Arc<VecSource>,
        bad_idx: usize,
    }

    impl crate::source::SampleSource for FlakySource {
        fn len(&self) -> usize {
            self.inner.len()
        }

        fn fetch(&self, idx: usize) -> crate::Result<Vec<u8>> {
            if idx == self.bad_idx {
                return Err(sciml_data::DataError::Format("injected fetch failure").into());
            }
            self.inner.fetch(idx)
        }

        fn bytes_read(&self) -> u64 {
            self.inner.bytes_read()
        }
    }

    #[test]
    fn injected_fetch_failure_errors_and_counts() {
        let tel = sciml_obs::Telemetry::disabled();
        let src = Arc::new(FlakySource {
            inner: tiny_dataset(8),
            bad_idx: 3,
        });
        let p = Pipeline::launch_with(
            src,
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                batch_size: 2,
                ..Default::default()
            },
            tel.clone(),
        )
        .unwrap();
        let err = p.collect_all().expect_err("injected failure must surface");
        assert!(
            err.to_string().contains("injected fetch failure"),
            "typed source error, got: {err}"
        );
        let snap = tel.registry.snapshot();
        assert_eq!(snap.counter("pipeline.fetch_errors"), 1);
        assert_eq!(snap.counter("pipeline.decode_errors"), 0);
    }

    #[test]
    fn spans_cover_stages_across_threads() {
        let tel = sciml_obs::Telemetry::new();
        let p = Pipeline::launch_with(
            tiny_dataset(12),
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                reader_threads: 2,
                decode_threads: 2,
                ..Default::default()
            },
            tel.clone(),
        )
        .unwrap();
        p.collect_all().unwrap();
        let events = tel.tracer.events();
        for stage in ["fetch", "decode", "batch", "wait"] {
            assert!(
                events.iter().any(|e| e.name == stage),
                "missing '{stage}' span"
            );
        }
        let worker_tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.name == "fetch" || e.name == "decode")
            .map(|e| e.tid)
            .collect();
        assert!(worker_tids.len() >= 2, "spans from at least two workers");
    }

    #[test]
    fn zero_batch_size_rejected() {
        let src = tiny_dataset(1);
        let r = Pipeline::launch(
            src,
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                batch_size: 0,
                ..Default::default()
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn stats_populate() {
        let cfg = PipelineConfig::default();
        let (_, stats) = run(8, cfg);
        assert!(stats.byte_count() > 0);
        assert!(stats.decode_seconds() >= 0.0);
        assert!(stats.batch_count() >= 2);
    }

    #[test]
    fn early_drop_does_not_deadlock() {
        let mut p = Pipeline::launch(
            tiny_dataset(64),
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                epochs: 4,
                prefetch: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Take one batch, then drop the pipeline mid-run.
        let _ = p.next_batch().unwrap();
        drop(p);
    }
}
