//! The prefetching pipeline: readers → decode pool → batcher → consumer.

use crate::batch::Batch;
use crate::decoder::{DecodedSample, DecoderPlugin};
use crate::source::SampleSource;
use crate::stats::PipelineStats;
use crate::{PipelineError, Result};
use crossbeam_channel as channel;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sciml_obs::{Telemetry, Tracer};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Samples per batch.
    pub batch_size: usize,
    /// Reader threads pulling from the source.
    pub reader_threads: usize,
    /// Decoder threads running the plugin.
    pub decode_threads: usize,
    /// Bounded queue depth between stages (prefetch window).
    pub prefetch: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Shuffle seed; shuffling is per epoch (seed + epoch).
    pub seed: u64,
    /// Drop the final incomplete batch of an epoch (the frameworks'
    /// `drop_remainder` behaviour). When false, a short batch is emitted.
    pub drop_remainder: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            batch_size: 4,
            reader_threads: 2,
            decode_threads: 2,
            prefetch: 8,
            epochs: 1,
            seed: 0,
            drop_remainder: false,
        }
    }
}

/// A running pipeline: iterate [`Pipeline::next_batch`] until `None`.
pub struct Pipeline {
    rx: Option<channel::Receiver<Result<Batch>>>,
    stats: Arc<PipelineStats>,
    tracer: Arc<Tracer>,
    workers: Vec<JoinHandle<()>>,
    finished: bool,
}

impl Pipeline {
    /// Launches the worker threads over a source and a decoder plugin,
    /// with private (untraced) telemetry. Use [`Pipeline::launch_with`]
    /// to record into a shared registry / tracer.
    pub fn launch(
        source: Arc<dyn SampleSource>,
        plugin: Arc<dyn DecoderPlugin>,
        cfg: PipelineConfig,
    ) -> Result<Self> {
        Self::launch_with(source, plugin, cfg, Telemetry::disabled())
    }

    /// Launches the worker threads, registering stage metrics in
    /// `telemetry.registry` (under `pipeline.*` names) and emitting
    /// `fetch`/`decode`/`batch`/`wait` spans to `telemetry.tracer` when
    /// it is enabled.
    pub fn launch_with(
        source: Arc<dyn SampleSource>,
        plugin: Arc<dyn DecoderPlugin>,
        cfg: PipelineConfig,
        telemetry: Telemetry,
    ) -> Result<Self> {
        if cfg.batch_size == 0 {
            return Err(PipelineError::Config("batch_size must be positive"));
        }
        if cfg.reader_threads == 0 || cfg.decode_threads == 0 {
            return Err(PipelineError::Config("need at least one thread per stage"));
        }
        let stats = PipelineStats::with_registry(&telemetry.registry);
        let tracer = telemetry.tracer;
        let n = source.len();

        // Stage 1: index generator -> (epoch, index) work items.
        let (idx_tx, idx_rx) = channel::bounded::<(usize, usize)>(cfg.prefetch.max(1));
        // Stage 2: fetch results, tagged with sequence for ordering.
        let (raw_tx, raw_rx) =
            channel::bounded::<(u64, usize, usize, Result<Vec<u8>>)>(cfg.prefetch.max(1));
        // Stage 3: decoded samples.
        let (dec_tx, dec_rx) =
            channel::bounded::<(u64, usize, usize, Result<DecodedSample>)>(cfg.prefetch.max(1));
        // Stage 4: batches to the consumer.
        let (batch_tx, batch_rx) = channel::bounded::<Result<Batch>>(cfg.prefetch.max(1));

        let mut workers = Vec::new();

        // Index generator thread: shuffled order, exactly once per epoch.
        {
            let cfg = cfg.clone();
            workers.push(std::thread::spawn(move || {
                for epoch in 0..cfg.epochs {
                    let mut order: Vec<usize> = (0..n).collect();
                    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(epoch as u64));
                    order.shuffle(&mut rng);
                    for idx in order {
                        if idx_tx.send((epoch, idx)).is_err() {
                            return;
                        }
                    }
                }
            }));
        }

        // Reader threads: fetch bytes. A shared sequence counter stamps
        // work items so the batcher can reassemble epoch order.
        let seq = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..cfg.reader_threads {
            let idx_rx = idx_rx.clone();
            let raw_tx = raw_tx.clone();
            let source = Arc::clone(&source);
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(&tracer);
            let seq = Arc::clone(&seq);
            workers.push(std::thread::spawn(move || {
                while let Ok((epoch, idx)) = idx_rx.recv() {
                    let s = seq.fetch_add(1, Ordering::Relaxed);
                    let bytes = {
                        let _span = tracer.span("pipeline", "fetch");
                        stats.fetch_ns.time(|| source.fetch(idx))
                    };
                    match bytes {
                        Ok(b) => {
                            stats.bytes.add(b.len() as u64);
                            stats.samples.inc();
                            if raw_tx.send((s, epoch, idx, Ok(b))).is_err() {
                                return;
                            }
                        }
                        Err(e) => {
                            // Surface the typed error downstream; this
                            // run is over for the consumer.
                            stats.fetch_errors.inc();
                            let _ = raw_tx.send((s, epoch, idx, Err(e)));
                            return;
                        }
                    }
                }
            }));
        }
        drop(idx_rx);
        drop(raw_tx);

        // Decoder threads.
        for _ in 0..cfg.decode_threads {
            let raw_rx = raw_rx.clone();
            let dec_tx = dec_tx.clone();
            let plugin = Arc::clone(&plugin);
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(&tracer);
            workers.push(std::thread::spawn(move || {
                while let Ok((s, epoch, idx, fetched)) = raw_rx.recv() {
                    let decoded = match fetched {
                        Ok(bytes) => {
                            let _span = tracer.span("pipeline", "decode");
                            let d = stats.decode_ns.time(|| plugin.decode(&bytes));
                            if d.is_err() {
                                stats.decode_errors.inc();
                            }
                            d
                        }
                        Err(e) => Err(e),
                    };
                    if dec_tx.send((s, epoch, idx, decoded)).is_err() {
                        return;
                    }
                }
            }));
        }
        drop(raw_rx);
        drop(dec_tx);

        // Batcher thread: group per epoch (out-of-order arrival within an
        // epoch is fine; epochs are batched independently).
        {
            let cfg = cfg.clone();
            let stats = Arc::clone(&stats);
            let tracer = Arc::clone(&tracer);
            workers.push(std::thread::spawn(move || {
                let mut pending: Vec<(usize, Vec<(usize, DecodedSample)>)> = Vec::new();
                let flush = |epoch: usize,
                             items: &mut Vec<(usize, DecodedSample)>,
                             tx: &channel::Sender<Result<Batch>>,
                             stats: &PipelineStats|
                 -> bool {
                    if items.is_empty() {
                        return true;
                    }
                    let _span = tracer.span("pipeline", "batch");
                    let sample_len = items[0].1.data.len();
                    let mut data = Vec::with_capacity(sample_len * items.len());
                    let mut labels = Vec::with_capacity(items.len());
                    let mut indices = Vec::with_capacity(items.len());
                    for (idx, s) in items.drain(..) {
                        data.extend_from_slice(&s.data);
                        labels.push(s.label);
                        indices.push(idx);
                    }
                    stats.batches.inc();
                    tx.send(Ok(Batch {
                        data,
                        sample_len,
                        labels,
                        indices,
                        epoch,
                    }))
                    .is_ok()
                };

                while let Ok((_s, epoch, idx, decoded)) = dec_rx.recv() {
                    let sample = match decoded {
                        Ok(s) => s,
                        Err(e) => {
                            let _ = batch_tx.send(Err(e));
                            return;
                        }
                    };
                    let slot = match pending.iter_mut().find(|(e, _)| *e == epoch) {
                        Some((_, items)) => items,
                        None => {
                            pending.push((epoch, Vec::new()));
                            &mut pending.last_mut().expect("just pushed").1
                        }
                    };
                    slot.push((idx, sample));
                    if slot.len() == cfg.batch_size {
                        let (e_id, mut items) = {
                            let pos = pending.iter().position(|(e, _)| *e == epoch).unwrap();
                            pending.remove(pos)
                        };
                        if !flush(e_id, &mut items, &batch_tx, &stats) {
                            return;
                        }
                    }
                }
                // Tail batches.
                if !cfg.drop_remainder {
                    for (epoch, mut items) in pending {
                        if !flush(epoch, &mut items, &batch_tx, &stats) {
                            return;
                        }
                    }
                }
            }));
        }

        Ok(Self {
            rx: Some(batch_rx),
            stats,
            tracer,
            workers,
            finished: false,
        })
    }

    /// Blocks for the next batch; `Ok(None)` when the run is complete.
    pub fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.finished {
            return Ok(None);
        }
        let rx = self.rx.as_ref().expect("receiver alive until drop");
        let got = {
            let _span = self.tracer.span("pipeline", "wait");
            self.stats.wait_ns.time(|| rx.recv())
        };
        match got {
            Ok(Ok(b)) => Ok(Some(b)),
            Ok(Err(e)) => {
                self.finished = true;
                Err(e)
            }
            Err(_) => {
                self.finished = true;
                Ok(None)
            }
        }
    }

    /// Collects every batch of the run (convenience for tests/benches).
    pub fn collect_all(mut self) -> Result<(Vec<Batch>, Arc<PipelineStats>)> {
        let mut out = Vec::new();
        while let Some(b) = self.next_batch()? {
            out.push(b);
        }
        let stats = Arc::clone(&self.stats);
        Ok((out, stats))
    }

    /// Shared stats handle.
    pub fn stats(&self) -> Arc<PipelineStats> {
        Arc::clone(&self.stats)
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        // Disconnect the consumer side so every worker sees a closed
        // channel and exits (a blocked `send` returns Err once the
        // receiver is gone), then join them.
        self.finished = true;
        drop(self.rx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::CosmoPluginCpu;
    use crate::source::VecSource;
    use sciml_codec::cosmoflow as cf;
    use sciml_codec::Op;
    use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};

    fn tiny_dataset(n: usize) -> Arc<VecSource> {
        let mut cfg = CosmoFlowConfig::test_small();
        cfg.grid = 8;
        cfg.halos = 4;
        let g = UniverseGenerator::new(cfg);
        let blobs: Vec<Vec<u8>> = (0..n as u64)
            .map(|i| cf::encode(&g.generate(i)).to_bytes())
            .collect();
        Arc::new(VecSource::new(blobs))
    }

    fn run(n: usize, cfg: PipelineConfig) -> (Vec<Batch>, Arc<PipelineStats>) {
        let p = Pipeline::launch(
            tiny_dataset(n),
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            cfg,
        )
        .unwrap();
        p.collect_all().unwrap()
    }

    #[test]
    fn delivers_every_sample_exactly_once_per_epoch() {
        let cfg = PipelineConfig {
            batch_size: 3,
            epochs: 2,
            ..Default::default()
        };
        let (batches, stats) = run(10, cfg);
        assert_eq!(stats.sample_count(), 20);
        for epoch in 0..2 {
            let mut seen: Vec<usize> = batches
                .iter()
                .filter(|b| b.epoch == epoch)
                .flat_map(|b| b.indices.iter().copied())
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>(), "epoch {epoch}");
        }
    }

    #[test]
    fn batch_sizes_respected_with_tail() {
        let cfg = PipelineConfig {
            batch_size: 4,
            epochs: 1,
            ..Default::default()
        };
        let (batches, _) = run(10, cfg);
        let mut sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 4, 4]);
    }

    #[test]
    fn drop_remainder_drops_tail() {
        let cfg = PipelineConfig {
            batch_size: 4,
            epochs: 1,
            drop_remainder: true,
            ..Default::default()
        };
        let (batches, _) = run(10, cfg);
        assert!(batches.iter().all(|b| b.len() == 4));
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn shuffling_differs_between_epochs_and_is_seeded() {
        let cfg = PipelineConfig {
            batch_size: 16,
            epochs: 2,
            reader_threads: 1,
            decode_threads: 1,
            seed: 42,
            ..Default::default()
        };
        let (batches, _) = run(16, cfg.clone());
        let e0: Vec<usize> = batches[0].indices.clone();
        let e1: Vec<usize> = batches[1].indices.clone();
        assert_ne!(e0, e1, "epoch shuffles must differ");
        // Same seed reproduces the same order with single-threaded stages.
        let (batches2, _) = run(16, cfg);
        assert_eq!(batches2[0].indices, e0);
    }

    #[test]
    fn many_threads_still_exactly_once() {
        let cfg = PipelineConfig {
            batch_size: 5,
            epochs: 3,
            reader_threads: 4,
            decode_threads: 4,
            prefetch: 2,
            ..Default::default()
        };
        let (batches, stats) = run(17, cfg);
        assert_eq!(stats.sample_count(), 51);
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 51);
    }

    #[test]
    fn decode_error_surfaces() {
        let src = Arc::new(VecSource::new(vec![b"garbage".to_vec()]));
        let tel = sciml_obs::Telemetry::disabled();
        let mut p = Pipeline::launch_with(
            src,
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig::default(),
            tel.clone(),
        )
        .unwrap();
        assert!(p.next_batch().is_err());
        // Subsequent calls return None, not hang.
        assert!(p.next_batch().unwrap().is_none());
        let snap = tel.registry.snapshot();
        assert_eq!(snap.counter("pipeline.decode_errors"), 1);
        assert_eq!(snap.counter("pipeline.fetch_errors"), 0);
    }

    /// Source that fails on one specific index.
    struct FlakySource {
        inner: Arc<VecSource>,
        bad_idx: usize,
    }

    impl crate::source::SampleSource for FlakySource {
        fn len(&self) -> usize {
            self.inner.len()
        }

        fn fetch(&self, idx: usize) -> crate::Result<Vec<u8>> {
            if idx == self.bad_idx {
                return Err(sciml_data::DataError::Format("injected fetch failure").into());
            }
            self.inner.fetch(idx)
        }

        fn bytes_read(&self) -> u64 {
            self.inner.bytes_read()
        }
    }

    #[test]
    fn injected_fetch_failure_errors_and_counts() {
        let tel = sciml_obs::Telemetry::disabled();
        let src = Arc::new(FlakySource {
            inner: tiny_dataset(8),
            bad_idx: 3,
        });
        let p = Pipeline::launch_with(
            src,
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                batch_size: 2,
                ..Default::default()
            },
            tel.clone(),
        )
        .unwrap();
        let err = p.collect_all().expect_err("injected failure must surface");
        assert!(
            err.to_string().contains("injected fetch failure"),
            "typed source error, got: {err}"
        );
        let snap = tel.registry.snapshot();
        assert_eq!(snap.counter("pipeline.fetch_errors"), 1);
        assert_eq!(snap.counter("pipeline.decode_errors"), 0);
    }

    #[test]
    fn spans_cover_stages_across_threads() {
        let tel = sciml_obs::Telemetry::new();
        let p = Pipeline::launch_with(
            tiny_dataset(12),
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                reader_threads: 2,
                decode_threads: 2,
                ..Default::default()
            },
            tel.clone(),
        )
        .unwrap();
        p.collect_all().unwrap();
        let events = tel.tracer.events();
        for stage in ["fetch", "decode", "batch", "wait"] {
            assert!(
                events.iter().any(|e| e.name == stage),
                "missing '{stage}' span"
            );
        }
        let worker_tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.name == "fetch" || e.name == "decode")
            .map(|e| e.tid)
            .collect();
        assert!(worker_tids.len() >= 2, "spans from at least two workers");
    }

    #[test]
    fn zero_batch_size_rejected() {
        let src = tiny_dataset(1);
        let r = Pipeline::launch(
            src,
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                batch_size: 0,
                ..Default::default()
            },
        );
        assert!(r.is_err());
    }

    #[test]
    fn stats_populate() {
        let cfg = PipelineConfig::default();
        let (_, stats) = run(8, cfg);
        assert!(stats.byte_count() > 0);
        assert!(stats.decode_seconds() >= 0.0);
        assert!(stats.batch_count() >= 2);
    }

    #[test]
    fn early_drop_does_not_deadlock() {
        let mut p = Pipeline::launch(
            tiny_dataset(64),
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                epochs: 4,
                prefetch: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Take one batch, then drop the pipeline mid-run.
        let _ = p.next_batch().unwrap();
        drop(p);
    }
}
