//! Recycled batch-tensor and fetch-buffer pool.
//!
//! Every batch the pipeline emits is backed by a full-size FP16 tensor,
//! and every fetch fills a byte buffer; allocating those per batch /
//! per sample is the allocation churn the zero-copy decode path exists
//! to eliminate (DALI's preallocated output buffers are the model).
//! The pool keeps bounded free lists of both kinds of buffer: checkout
//! pops a recycled buffer when one is available (a *hit*) and allocates
//! otherwise (a *miss*); dropping a [`PooledTensor`] / [`PooledBytes`]
//! returns the buffer, unless the free list is already at capacity, in
//! which case it is discarded — so idle memory stays bounded at
//! `capacity` buffers per kind regardless of how long the run is.
//!
//! Telemetry lives in the shared `sciml-obs` registry under
//! `pipeline.pool.*`: `hits`, `misses`, `returns`, `discards` counters
//! and a `resident_bytes` gauge tracking the bytes currently parked in
//! the free lists.

use parking_lot::Mutex;
use sciml_half::F16;
use sciml_obs::{Counter, Gauge, MetricsRegistry};
use std::sync::Arc;

/// Bounded free lists of recycled buffers. Cheap to share
/// (`Arc<BufferPool>`); all methods are thread-safe.
#[derive(Debug)]
pub struct BufferPool {
    tensors: Mutex<Vec<Vec<F16>>>,
    bytes: Mutex<Vec<Vec<u8>>>,
    capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    returns: Arc<Counter>,
    discards: Arc<Counter>,
    resident_bytes: Arc<Gauge>,
}

impl BufferPool {
    /// Pool retaining up to `capacity` idle buffers of each kind, with
    /// private (unregistered) instruments. `capacity == 0` disables
    /// reuse entirely: every checkout allocates and every return
    /// discards, which is the per-sample-alloc baseline the benches
    /// compare against.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self::build(capacity, None))
    }

    /// [`BufferPool::new`] with the `pipeline.pool.*` instruments
    /// registered in `registry`.
    pub fn with_registry(capacity: usize, registry: &MetricsRegistry) -> Arc<Self> {
        Arc::new(Self::build(capacity, Some(registry)))
    }

    fn build(capacity: usize, registry: Option<&MetricsRegistry>) -> Self {
        let counter = |name: &str| match registry {
            Some(r) => r.counter(name),
            None => Arc::new(Counter::default()),
        };
        Self {
            tensors: Mutex::new(Vec::new()),
            bytes: Mutex::new(Vec::new()),
            capacity,
            hits: counter("pipeline.pool.hits"),
            misses: counter("pipeline.pool.misses"),
            returns: counter("pipeline.pool.returns"),
            discards: counter("pipeline.pool.discards"),
            resident_bytes: match registry {
                Some(r) => r.gauge("pipeline.pool.resident_bytes"),
                None => Arc::new(Gauge::default()),
            },
        }
    }

    /// Retained-idle-buffer bound (per kind).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Checkouts served from the free list.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Checkouts that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Bytes currently parked in the free lists.
    pub fn resident_bytes(&self) -> i64 {
        self.resident_bytes.get()
    }

    /// Checks out a tensor of exactly `len` values. Recycled buffers
    /// are resized (same-size reuse, the steady state, touches no
    /// memory — stale contents are the caller's to overwrite); a miss
    /// allocates zeroed.
    pub fn checkout_tensor(self: &Arc<Self>, len: usize) -> PooledTensor {
        let reused = if self.capacity == 0 {
            None
        } else {
            self.tensors.lock().pop()
        };
        let data = match reused {
            Some(mut v) => {
                self.hits.inc();
                self.resident_bytes
                    .add(-((v.capacity() * std::mem::size_of::<F16>()) as i64));
                v.resize(len, F16::ZERO);
                v
            }
            None => {
                self.misses.inc();
                // lint:allow(no_alloc_hot_loop): pool-miss growth path; steady state reuses via the hit path above
                vec![F16::ZERO; len]
            }
        };
        PooledTensor {
            data,
            pool: (self.capacity > 0).then(|| Arc::clone(self)),
        }
    }

    /// Checks out a byte buffer (cleared; capacity is whatever its last
    /// use grew it to, so steady-state fetches do not reallocate).
    pub fn checkout_bytes(self: &Arc<Self>) -> PooledBytes {
        let reused = if self.capacity == 0 {
            None
        } else {
            self.bytes.lock().pop()
        };
        let data = match reused {
            Some(mut v) => {
                self.hits.inc();
                self.resident_bytes.add(-(v.capacity() as i64));
                v.clear();
                v
            }
            None => {
                self.misses.inc();
                Vec::new()
            }
        };
        PooledBytes {
            data,
            pool: (self.capacity > 0).then(|| Arc::clone(self)),
        }
    }

    fn return_tensor(&self, v: Vec<F16>) {
        let mut free = self.tensors.lock();
        if free.len() < self.capacity {
            self.returns.inc();
            self.resident_bytes
                .add((v.capacity() * std::mem::size_of::<F16>()) as i64);
            free.push(v);
        } else {
            self.discards.inc();
        }
    }

    fn return_bytes(&self, v: Vec<u8>) {
        let mut free = self.bytes.lock();
        if free.len() < self.capacity {
            self.returns.inc();
            self.resident_bytes.add(v.capacity() as i64);
            free.push(v);
        } else {
            self.discards.inc();
        }
    }
}

/// A checked-out FP16 tensor; dereferences to `[F16]` and returns its
/// buffer to the pool on drop. The default value is an empty, unpooled
/// tensor (used by tests constructing batches by hand).
#[derive(Debug, Default)]
pub struct PooledTensor {
    data: Vec<F16>,
    pool: Option<Arc<BufferPool>>,
}

impl PooledTensor {
    /// Wraps a plain vector with no backing pool (dropping it simply
    /// frees the memory).
    pub fn unpooled(data: Vec<F16>) -> Self {
        Self { data, pool: None }
    }
}

impl From<Vec<F16>> for PooledTensor {
    fn from(data: Vec<F16>) -> Self {
        Self::unpooled(data)
    }
}

impl std::ops::Deref for PooledTensor {
    type Target = [F16];

    fn deref(&self) -> &[F16] {
        &self.data
    }
}

impl std::ops::DerefMut for PooledTensor {
    fn deref_mut(&mut self) -> &mut [F16] {
        &mut self.data
    }
}

impl PartialEq for PooledTensor {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Drop for PooledTensor {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.return_tensor(std::mem::take(&mut self.data));
        }
    }
}

/// A checked-out fetch buffer; dereferences to `Vec<u8>` so sources can
/// fill it in place, and returns to the pool on drop.
#[derive(Debug, Default)]
pub struct PooledBytes {
    data: Vec<u8>,
    pool: Option<Arc<BufferPool>>,
}

impl std::ops::Deref for PooledBytes {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.data
    }
}

impl std::ops::DerefMut for PooledBytes {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

impl Drop for PooledBytes {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.return_bytes(std::mem::take(&mut self.data));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_return_cycle_hits_after_warmup() {
        let pool = BufferPool::new(2);
        let t = pool.checkout_tensor(8);
        assert_eq!(pool.misses(), 1);
        assert_eq!(t.len(), 8);
        drop(t);
        let t = pool.checkout_tensor(8);
        assert_eq!(pool.hits(), 1, "second checkout must reuse");
        assert_eq!(t.len(), 8);
        drop(t);
    }

    #[test]
    fn resize_on_shape_change_and_fresh_buffers_zeroed() {
        let pool = BufferPool::new(2);
        let mut t = pool.checkout_tensor(4);
        assert!(t.iter().all(|&v| v == F16::ZERO));
        t[0] = F16::ONE;
        drop(t);
        // Reuse at a larger size: the grown tail is zeroed, the head may
        // be stale — callers overwrite every slot.
        let t = pool.checkout_tensor(6);
        assert_eq!(t.len(), 6);
        assert!(t[4..].iter().all(|&v| v == F16::ZERO));
    }

    #[test]
    fn capacity_bounds_resident_buffers() {
        let pool = BufferPool::new(1);
        let a = pool.checkout_tensor(16);
        let b = pool.checkout_tensor(16);
        drop(a); // retained
        drop(b); // discarded: free list full
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.misses(), 2);
        let resident = pool.resident_bytes();
        assert!(
            resident <= 16 * std::mem::size_of::<F16>() as i64,
            "resident {resident}"
        );
        // Only one buffer came back.
        let _c = pool.checkout_tensor(16);
        assert_eq!(pool.hits(), 1);
        let _d = pool.checkout_tensor(16);
        assert_eq!(pool.misses(), 3);
    }

    #[test]
    fn zero_capacity_disables_pooling() {
        let pool = BufferPool::new(0);
        drop(pool.checkout_tensor(4));
        drop(pool.checkout_bytes());
        let t = pool.checkout_tensor(4);
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.misses(), 3);
        assert_eq!(pool.resident_bytes(), 0);
        drop(t);
    }

    #[test]
    fn byte_buffers_recycle_capacity() {
        let pool = BufferPool::new(2);
        let mut b = pool.checkout_bytes();
        b.extend_from_slice(&[1, 2, 3, 4]);
        let cap = b.capacity();
        drop(b);
        let b = pool.checkout_bytes();
        assert!(b.is_empty(), "recycled buffer must come back cleared");
        assert!(b.capacity() >= cap, "capacity must be retained");
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn metrics_register_under_pool_names() {
        let reg = MetricsRegistry::new();
        let pool = BufferPool::with_registry(2, &reg);
        drop(pool.checkout_tensor(4));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pipeline.pool.misses"), 1);
        assert_eq!(snap.counter("pipeline.pool.returns"), 1);
        assert!(matches!(
            snap.get("pipeline.pool.resident_bytes"),
            Some(sciml_obs::MetricValue::Gauge(v)) if *v == 8
        ));
    }

    #[test]
    fn unpooled_tensor_is_plain_memory() {
        let t = PooledTensor::from(vec![F16::ONE; 3]);
        assert_eq!(t.len(), 3);
        drop(t); // must not touch any pool
    }
}
