//! Sample byte sources and the staging wrapper.

use crate::Result;
use parking_lot::Mutex;
use sciml_data::DataError;
use sciml_obs::{Counter, MetricsRegistry};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where encoded sample bytes come from.
///
/// Implementations must be thread-safe: reader threads call `fetch`
/// concurrently.
pub trait SampleSource: Send + Sync {
    /// Number of samples available.
    fn len(&self) -> usize;

    /// True when the source holds no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetches the raw bytes of sample `idx`.
    fn fetch(&self, idx: usize) -> Result<Vec<u8>>;

    /// Fetches sample `idx` into `buf`, replacing its contents. The
    /// default routes through [`SampleSource::fetch`]; sources that can
    /// fill a caller-provided buffer directly override this so repeat
    /// fetches reuse one allocation (the pipeline's readers pass
    /// recycled pool buffers here).
    fn fetch_into(&self, idx: usize, buf: &mut Vec<u8>) -> Result<()> {
        let bytes = self.fetch(idx)?;
        buf.clear();
        buf.extend_from_slice(&bytes);
        Ok(())
    }

    /// Total bytes read so far (for data-movement accounting).
    fn bytes_read(&self) -> u64;
}

/// Shared handles forward to the underlying source, so an
/// `Arc<dyn SampleSource>` (or `Arc<ConcreteSource>`) can be handed to
/// both a local pipeline and the serving layer without wrappers.
impl<S: SampleSource + ?Sized> SampleSource for Arc<S> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn fetch(&self, idx: usize) -> Result<Vec<u8>> {
        (**self).fetch(idx)
    }

    fn fetch_into(&self, idx: usize, buf: &mut Vec<u8>) -> Result<()> {
        (**self).fetch_into(idx, buf)
    }

    fn bytes_read(&self) -> u64 {
        (**self).bytes_read()
    }
}

/// In-memory source: one byte blob per sample.
#[derive(Debug, Default)]
pub struct VecSource {
    samples: Vec<Vec<u8>>,
    read: AtomicU64,
}

impl VecSource {
    /// Wraps pre-encoded sample blobs.
    pub fn new(samples: Vec<Vec<u8>>) -> Self {
        Self {
            samples,
            read: AtomicU64::new(0),
        }
    }
}

impl SampleSource for VecSource {
    fn len(&self) -> usize {
        self.samples.len()
    }

    fn fetch(&self, idx: usize) -> Result<Vec<u8>> {
        let s = self
            .samples
            .get(idx)
            .ok_or(DataError::Format("sample index out of range"))?;
        self.read.fetch_add(s.len() as u64, Ordering::Relaxed);
        Ok(s.clone())
    }

    fn fetch_into(&self, idx: usize, buf: &mut Vec<u8>) -> Result<()> {
        let s = self
            .samples
            .get(idx)
            .ok_or(DataError::Format("sample index out of range"))?;
        self.read.fetch_add(s.len() as u64, Ordering::Relaxed);
        buf.clear();
        buf.extend_from_slice(s);
        Ok(())
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

/// Directory source: `sample_%06d.bin` files under a root directory,
/// standing in for the shared parallel file system.
#[derive(Debug)]
pub struct DirSource {
    root: PathBuf,
    count: usize,
    read: AtomicU64,
}

impl DirSource {
    /// Opens a directory of numbered sample files.
    pub fn open(root: impl Into<PathBuf>, count: usize) -> Self {
        Self {
            root: root.into(),
            count,
            read: AtomicU64::new(0),
        }
    }

    /// File path of sample `idx`.
    pub fn path(&self, idx: usize) -> PathBuf {
        self.root.join(format!("sample_{idx:06}.bin"))
    }

    /// Writes sample files into a directory (dataset preparation).
    pub fn write_all(root: impl Into<PathBuf>, samples: &[Vec<u8>]) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(DataError::Io)?;
        let src = Self::open(root, samples.len());
        for (i, s) in samples.iter().enumerate() {
            fs::write(src.path(i), s).map_err(DataError::Io)?;
        }
        Ok(src)
    }
}

impl SampleSource for DirSource {
    fn len(&self) -> usize {
        self.count
    }

    fn fetch(&self, idx: usize) -> Result<Vec<u8>> {
        if idx >= self.count {
            return Err(DataError::Format("sample index out of range").into());
        }
        let bytes = fs::read(self.path(idx)).map_err(DataError::Io)?;
        self.read.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(bytes)
    }

    fn fetch_into(&self, idx: usize, buf: &mut Vec<u8>) -> Result<()> {
        use std::io::Read;
        if idx >= self.count {
            return Err(DataError::Format("sample index out of range").into());
        }
        buf.clear();
        let mut f = fs::File::open(self.path(idx)).map_err(DataError::Io)?;
        let n = f.read_to_end(buf).map_err(DataError::Io)?;
        self.read.fetch_add(n as u64, Ordering::Relaxed);
        Ok(())
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

/// Staging wrapper: first access copies a sample from the (slow, shared)
/// inner source into a local cache — node-local NVMe in the paper's
/// *staged* experiments; repeat epochs then hit the cache.
pub struct StagedSource<S> {
    inner: S,
    cache: Mutex<Vec<Option<Arc<Vec<u8>>>>>,
    /// Fetches served from the staging cache.
    hits: Arc<Counter>,
    /// Fetches that had to go to the inner source.
    misses: Arc<Counter>,
    read: AtomicU64,
    capacity_bytes: u64,
    cached_bytes: AtomicU64,
}

impl<S: SampleSource> StagedSource<S> {
    /// Wraps `inner` with a staging cache of `capacity_bytes` (the NVMe
    /// capacity; evictions are not modeled — over-capacity samples
    /// simply keep streaming from the inner source, matching how the
    /// benchmarks size their staged datasets to fit).
    pub fn new(inner: S, capacity_bytes: u64) -> Self {
        Self::build(inner, capacity_bytes, None)
    }

    /// [`StagedSource::new`] with the hit/miss counters registered in
    /// `registry` as `pipeline.cache.staged.{hits,misses}`, so cache
    /// effectiveness shows up in metrics snapshots instead of living in
    /// ad-hoc atomics.
    pub fn with_registry(inner: S, capacity_bytes: u64, registry: &MetricsRegistry) -> Self {
        Self::build(inner, capacity_bytes, Some(registry))
    }

    fn build(inner: S, capacity_bytes: u64, registry: Option<&MetricsRegistry>) -> Self {
        let n = inner.len();
        let counter = |name: &str| match registry {
            Some(r) => r.counter(name),
            None => Arc::new(Counter::default()),
        };
        Self {
            hits: counter("pipeline.cache.staged.hits"),
            misses: counter("pipeline.cache.staged.misses"),
            inner,
            cache: Mutex::new(vec![None; n]),
            read: AtomicU64::new(0),
            capacity_bytes,
            cached_bytes: AtomicU64::new(0),
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

impl<S: SampleSource> SampleSource for StagedSource<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn fetch(&self, idx: usize) -> Result<Vec<u8>> {
        if let Some(hit) = self.cache.lock().get(idx).and_then(|e| e.clone()) {
            self.hits.inc();
            self.read.fetch_add(hit.len() as u64, Ordering::Relaxed);
            return Ok(hit.as_ref().clone());
        }
        self.misses.inc();
        let bytes = self.inner.fetch(idx)?;
        self.read.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let new_total = self.cached_bytes.load(Ordering::Relaxed) + bytes.len() as u64;
        if new_total <= self.capacity_bytes {
            self.cached_bytes.store(new_total, Ordering::Relaxed);
            self.cache.lock()[idx] = Some(Arc::new(bytes.clone()));
        }
        Ok(bytes)
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

/// Host-memory LRU cache above any source — the top tier of the paper's
/// hierarchy (shared FS → node NVMe → host DRAM). Unlike
/// [`StagedSource`], which never evicts (NVMe staging is
/// write-once-per-job), this cache evicts least-recently-used samples
/// when `capacity_bytes` is exceeded, modelling host-RAM pressure.
pub struct MemoryCacheSource<S> {
    inner: S,
    state: Mutex<LruState>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    read: AtomicU64,
    capacity_bytes: u64,
}

struct LruState {
    entries: Vec<Option<Arc<Vec<u8>>>>,
    /// Most-recent at the back.
    order: Vec<usize>,
    bytes: u64,
}

impl<S: SampleSource> MemoryCacheSource<S> {
    /// Wraps `inner` with an LRU cache of `capacity_bytes`.
    pub fn new(inner: S, capacity_bytes: u64) -> Self {
        Self::build(inner, capacity_bytes, None)
    }

    /// [`MemoryCacheSource::new`] with hit/miss/eviction counters
    /// registered in `registry` as
    /// `pipeline.cache.memory.{hits,misses,evictions}`.
    pub fn with_registry(inner: S, capacity_bytes: u64, registry: &MetricsRegistry) -> Self {
        Self::build(inner, capacity_bytes, Some(registry))
    }

    fn build(inner: S, capacity_bytes: u64, registry: Option<&MetricsRegistry>) -> Self {
        let n = inner.len();
        let counter = |name: &str| match registry {
            Some(r) => r.counter(name),
            None => Arc::new(Counter::default()),
        };
        Self {
            hits: counter("pipeline.cache.memory.hits"),
            misses: counter("pipeline.cache.memory.misses"),
            evictions: counter("pipeline.cache.memory.evictions"),
            inner,
            state: Mutex::new(LruState {
                entries: vec![None; n],
                order: Vec::new(),
                bytes: 0,
            }),
            read: AtomicU64::new(0),
            capacity_bytes,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Samples evicted so far under capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Bytes currently resident in the cache.
    pub fn resident_bytes(&self) -> u64 {
        self.state.lock().bytes
    }
}

impl<S: SampleSource> SampleSource for MemoryCacheSource<S> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn fetch(&self, idx: usize) -> Result<Vec<u8>> {
        {
            let mut st = self.state.lock();
            if idx < st.entries.len() {
                if let Some(hit) = st.entries[idx].clone() {
                    // Refresh recency.
                    if let Some(pos) = st.order.iter().position(|&o| o == idx) {
                        st.order.remove(pos);
                    }
                    st.order.push(idx);
                    drop(st);
                    self.hits.inc();
                    self.read.fetch_add(hit.len() as u64, Ordering::Relaxed);
                    return Ok(hit.as_ref().clone());
                }
            }
        }
        self.misses.inc();
        let bytes = self.inner.fetch(idx)?;
        self.read.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let mut st = self.state.lock();
        if idx < st.entries.len() && (bytes.len() as u64) <= self.capacity_bytes {
            // Evict LRU entries until the new sample fits.
            while st.bytes + bytes.len() as u64 > self.capacity_bytes {
                let Some(victim) = st.order.first().copied() else {
                    break;
                };
                st.order.remove(0);
                if let Some(old) = st.entries[victim].take() {
                    st.bytes -= old.len() as u64;
                    self.evictions.inc();
                }
            }
            if st.bytes + bytes.len() as u64 <= self.capacity_bytes {
                st.bytes += bytes.len() as u64;
                st.entries[idx] = Some(Arc::new(bytes.clone()));
                st.order.push(idx);
            }
        }
        Ok(bytes)
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<u8>> {
        (0..5u8).map(|i| vec![i; (i as usize + 1) * 10]).collect()
    }

    #[test]
    fn vec_source_fetches_and_counts() {
        let s = VecSource::new(blobs());
        assert_eq!(s.len(), 5);
        assert_eq!(s.fetch(2).unwrap(), vec![2u8; 30]);
        assert_eq!(s.bytes_read(), 30);
        assert!(s.fetch(5).is_err());
    }

    #[test]
    fn dir_source_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sciml_dirsrc_{}", std::process::id()));
        let s = DirSource::write_all(&dir, &blobs()).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.fetch(3).unwrap(), vec![3u8; 40]);
        assert!(s.fetch(9).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staged_source_hits_after_first_epoch() {
        let inner = VecSource::new(blobs());
        let s = StagedSource::new(inner, u64::MAX);
        for i in 0..5 {
            s.fetch(i).unwrap();
        }
        assert_eq!(s.misses(), 5);
        assert_eq!(s.hits(), 0);
        for i in 0..5 {
            s.fetch(i).unwrap();
        }
        assert_eq!(s.hits(), 5);
        // Inner source was only read once per sample.
        assert_eq!(s.inner.bytes_read(), 10 + 20 + 30 + 40 + 50);
    }

    #[test]
    fn memory_cache_hits_within_capacity() {
        let c = MemoryCacheSource::new(VecSource::new(blobs()), u64::MAX);
        for _ in 0..3 {
            for i in 0..5 {
                c.fetch(i).unwrap();
            }
        }
        assert_eq!(c.misses(), 5);
        assert_eq!(c.hits(), 10);
        assert_eq!(c.resident_bytes(), 150);
    }

    #[test]
    fn memory_cache_evicts_lru() {
        // Samples are 10,20,30,40,50 bytes; capacity 60.
        let c = MemoryCacheSource::new(VecSource::new(blobs()), 60);
        c.fetch(0).unwrap(); // cache {0:10}
        c.fetch(1).unwrap(); // {0,1} = 30
        c.fetch(2).unwrap(); // {0,1,2} = 60
        assert_eq!(c.resident_bytes(), 60);
        c.fetch(3).unwrap(); // 40 bytes: evict 0 (10) and 1 (20) -> {2,3}=70? no: evict until fits: 60+40>60 evict 0 -> 50+40>60 evict 1 -> 30+40>60 evict 2 -> 0+40 ok
        assert_eq!(c.resident_bytes(), 40);
        // 3 is now cached, 0..2 are not.
        c.fetch(3).unwrap();
        assert_eq!(c.hits(), 1);
        c.fetch(0).unwrap();
        assert_eq!(c.misses(), 5);
    }

    #[test]
    fn memory_cache_skips_oversized_samples() {
        let c = MemoryCacheSource::new(VecSource::new(blobs()), 15);
        // Sample 4 is 50 bytes > 15: served but never cached.
        c.fetch(4).unwrap();
        c.fetch(4).unwrap();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 2);
        // Sample 0 (10 bytes) caches fine.
        c.fetch(0).unwrap();
        c.fetch(0).unwrap();
        assert_eq!(c.hits(), 1);
    }

    #[test]
    fn tiered_stack_memory_over_nvme_over_fs() {
        // The full hierarchy as real code: FS (VecSource) under NVMe
        // staging under a host-RAM LRU.
        let fs = VecSource::new(blobs());
        let nvme = StagedSource::new(fs, u64::MAX);
        let ram = MemoryCacheSource::new(nvme, 35); // fits samples 0+1 only
                                                    // A cyclic scan over a working set larger than the LRU capacity
                                                    // thrashes RAM (no hits) but the NVMe stage absorbs re-reads.
        for _ in 0..2 {
            for i in 0..5 {
                ram.fetch(i).unwrap();
            }
        }
        assert_eq!(ram.hits(), 0, "LRU thrash under cyclic scan");
        // Re-referencing a just-fetched (cacheable) sample hits RAM.
        ram.fetch(0).unwrap();
        ram.fetch(0).unwrap();
        assert!(ram.hits() >= 1);
    }

    #[test]
    fn memory_cache_counts_evictions() {
        // Samples are 10,20,30,40,50 bytes; capacity 60.
        let c = MemoryCacheSource::new(VecSource::new(blobs()), 60);
        c.fetch(0).unwrap();
        c.fetch(1).unwrap();
        c.fetch(2).unwrap(); // {0,1,2} = 60, no evictions yet
        assert_eq!(c.evictions(), 0);
        c.fetch(3).unwrap(); // evicts 0, 1 and 2 to fit 40
        assert_eq!(c.evictions(), 3);
        c.fetch(4).unwrap(); // evicts 3 to fit 50
        assert_eq!(c.evictions(), 4);
    }

    #[test]
    fn memory_cache_eviction_order_is_lru_not_fifo() {
        // 10,20,30 byte samples, capacity 60: all three fit.
        let c = MemoryCacheSource::new(VecSource::new(blobs()), 60);
        c.fetch(0).unwrap();
        c.fetch(1).unwrap();
        c.fetch(2).unwrap();
        // Touch 0 so it becomes most-recent; 1 is now the LRU victim.
        c.fetch(0).unwrap();
        assert_eq!(c.hits(), 1);
        // 40-byte sample forces eviction of 1 (20) and 2 (30) — but 0
        // (10, recently used) must survive: 60-20-30=10, +40 = 50 <= 60.
        c.fetch(3).unwrap();
        c.fetch(0).unwrap();
        assert_eq!(c.hits(), 2, "recently-used sample 0 must not be evicted");
        c.fetch(1).unwrap();
        assert_eq!(c.misses(), 5, "LRU victim 1 must have been evicted");
    }

    #[test]
    fn memory_cache_consistent_under_concurrent_fetches() {
        use std::sync::Arc;
        let c = Arc::new(MemoryCacheSource::new(
            VecSource::new((0..16u8).map(|i| vec![i; 100]).collect()),
            500, // holds 5 of 16 samples: constant eviction pressure
        ));
        let threads = 8;
        let rounds = 50;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for r in 0..rounds {
                        let idx = (t * 7 + r * 3) % 16;
                        let got = c.fetch(idx).unwrap();
                        assert_eq!(got, vec![idx as u8; 100], "corrupt read at {idx}");
                    }
                });
            }
        });
        // Every fetch returned full-size data, so the accounting must
        // add up exactly, hit or miss.
        assert_eq!(c.bytes_read(), (threads * rounds * 100) as u64);
        assert_eq!(c.hits() + c.misses(), (threads * rounds) as u64);
        // Capacity invariant survived the race.
        assert!(c.resident_bytes() <= 500);
        assert!(c.evictions() > 0, "pressure must have evicted something");
    }

    #[test]
    fn staged_over_missing_dir_errors_not_panics() {
        // The staging tier wraps a backing directory that has vanished
        // (e.g. scratch purge): every fetch must surface an error.
        let missing = std::env::temp_dir().join(format!(
            "sciml_missing_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let s = StagedSource::new(DirSource::open(&missing, 3), u64::MAX);
        assert_eq!(s.len(), 3);
        for i in 0..3 {
            assert!(s.fetch(i).is_err(), "fetch {i} from missing dir must error");
        }
        assert_eq!(s.hits(), 0);
        assert_eq!(s.misses(), 3);
        assert_eq!(s.bytes_read(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn write_all_into_read_only_dir_errors_not_panics() {
        use std::os::unix::fs::PermissionsExt;
        let dir = std::env::temp_dir().join(format!(
            "sciml_ro_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();
        let result = DirSource::write_all(dir.join("staged"), &blobs());
        // Restore before asserting so cleanup works even on failure.
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // Root can write anywhere; outside that case this must be a
        // clean error, and either way it must not panic.
        if let Err(e) = result {
            assert!(e.to_string().contains("io") || !e.to_string().is_empty());
        }
    }

    #[test]
    fn staged_source_respects_capacity() {
        let inner = VecSource::new(blobs());
        // Only the first two samples (10+20 bytes) fit.
        let s = StagedSource::new(inner, 30);
        for i in 0..5 {
            s.fetch(i).unwrap();
        }
        for i in 0..5 {
            s.fetch(i).unwrap();
        }
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 8);
    }
}
