//! Per-stage instrumentation of the loading pipeline, backed by the
//! shared `sciml-obs` registry.
//!
//! Stage timings are full latency distributions (log-bucketed
//! histograms answering p50/p95/p99), not just nanosecond sums; the
//! old seconds/count accessors remain, now derived from the histogram
//! sums, so existing callers keep working. Every instrument is
//! registered under a `pipeline.*` name in a [`MetricsRegistry`], which
//! may be shared with the serving and training tiers for one coherent
//! snapshot.

use sciml_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Per-stage latency histograms plus counters, shared across worker
/// threads. Construct via [`PipelineStats::new`] (private registry) or
/// [`PipelineStats::with_registry`] (shared registry).
#[derive(Debug)]
pub struct PipelineStats {
    registry: Arc<MetricsRegistry>,
    /// Per-sample fetch latency, nanoseconds (`pipeline.fetch_ns`).
    pub fetch_ns: Arc<Histogram>,
    /// Per-sample decode latency, nanoseconds (`pipeline.decode_ns`).
    pub decode_ns: Arc<Histogram>,
    /// Consumer wait per batch, nanoseconds (`pipeline.wait_ns`).
    pub wait_ns: Arc<Histogram>,
    /// Samples fetched (`pipeline.samples`).
    pub samples: Arc<Counter>,
    /// Batches delivered (`pipeline.batches`).
    pub batches: Arc<Counter>,
    /// Bytes fetched from the source (`pipeline.bytes`).
    pub bytes: Arc<Counter>,
    /// Source fetches that returned an error (`pipeline.fetch_errors`).
    pub fetch_errors: Arc<Counter>,
    /// Decoder invocations that returned an error
    /// (`pipeline.decode_errors`).
    pub decode_errors: Arc<Counter>,
    /// Depth of the fetch→decode queue, sampled as items pass through
    /// (`pipeline.queue.raw_depth`). A queue pinned at capacity means
    /// decode is the bottleneck; pinned at zero means fetch is.
    pub raw_depth: Arc<Gauge>,
    /// Depth of the decode→consumer queue
    /// (`pipeline.queue.batch_depth`).
    pub batch_depth: Arc<Gauge>,
}

impl Default for PipelineStats {
    fn default() -> Self {
        Self::on_registry(&MetricsRegistry::new())
    }
}

impl PipelineStats {
    /// Fresh stats handle on a private registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Stats handle registering its instruments in `registry`, so
    /// pipeline metrics appear alongside whatever else the process
    /// records there.
    pub fn with_registry(registry: &Arc<MetricsRegistry>) -> Arc<Self> {
        Arc::new(Self::on_registry(registry))
    }

    fn on_registry(registry: &Arc<MetricsRegistry>) -> Self {
        Self {
            registry: Arc::clone(registry),
            fetch_ns: registry.histogram("pipeline.fetch_ns"),
            decode_ns: registry.histogram("pipeline.decode_ns"),
            wait_ns: registry.histogram("pipeline.wait_ns"),
            samples: registry.counter("pipeline.samples"),
            batches: registry.counter("pipeline.batches"),
            bytes: registry.counter("pipeline.bytes"),
            fetch_errors: registry.counter("pipeline.fetch_errors"),
            decode_errors: registry.counter("pipeline.decode_errors"),
            raw_depth: registry.gauge("pipeline.queue.raw_depth"),
            batch_depth: registry.gauge("pipeline.queue.batch_depth"),
        }
    }

    /// The registry these instruments live in.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Seconds spent fetching (sum across workers).
    pub fn fetch_seconds(&self) -> f64 {
        self.fetch_ns.sum() as f64 * 1e-9
    }

    /// Seconds spent decoding (sum across workers).
    pub fn decode_seconds(&self) -> f64 {
        self.decode_ns.sum() as f64 * 1e-9
    }

    /// Seconds the consumer spent blocked on the pipeline.
    pub fn wait_seconds(&self) -> f64 {
        self.wait_ns.sum() as f64 * 1e-9
    }

    /// Samples delivered.
    pub fn sample_count(&self) -> u64 {
        self.samples.get()
    }

    /// Batches delivered.
    pub fn batch_count(&self) -> u64 {
        self.batches.get()
    }

    /// Bytes fetched from the source.
    pub fn byte_count(&self) -> u64 {
        self.bytes.get()
    }

    /// Fetch errors observed.
    pub fn fetch_error_count(&self) -> u64 {
        self.fetch_errors.get()
    }

    /// Decode errors observed.
    pub fn decode_error_count(&self) -> u64 {
        self.decode_errors.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates_into_histogram() {
        let s = PipelineStats::default();
        let v = s.fetch_ns.time(|| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(s.fetch_seconds() >= 0.001);
        assert_eq!(s.fetch_ns.count(), 1);
    }

    #[test]
    fn second_conversions() {
        let s = PipelineStats::default();
        s.fetch_ns.record(2_500_000_000);
        assert!((s.fetch_seconds() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn shared_registry_sees_pipeline_metrics() {
        let reg = MetricsRegistry::new();
        let s = PipelineStats::with_registry(&reg);
        s.samples.add(3);
        s.decode_ns.record(1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("pipeline.samples"), 3);
        assert_eq!(snap.histogram("pipeline.decode_ns").unwrap().count, 1);
    }
}
