//! Per-stage instrumentation of the loading pipeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cumulative wall-time per pipeline stage plus counters, shared across
/// worker threads.
#[derive(Debug, Default)]
pub struct PipelineStats {
    /// Nanoseconds spent fetching bytes from the source.
    pub fetch_ns: AtomicU64,
    /// Nanoseconds spent in the decoder plugin.
    pub decode_ns: AtomicU64,
    /// Nanoseconds the consumer waited for a batch.
    pub wait_ns: AtomicU64,
    /// Samples fetched.
    pub samples: AtomicU64,
    /// Batches delivered.
    pub batches: AtomicU64,
    /// Bytes fetched from the source.
    pub bytes: AtomicU64,
}

impl PipelineStats {
    /// Fresh shared stats handle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Times `f`, adding the elapsed nanoseconds to `counter`.
    pub fn timed<T>(counter: &AtomicU64, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        counter.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    /// Seconds spent fetching.
    pub fn fetch_seconds(&self) -> f64 {
        self.fetch_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Seconds spent decoding.
    pub fn decode_seconds(&self) -> f64 {
        self.decode_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Seconds the consumer spent blocked on the pipeline.
    pub fn wait_seconds(&self) -> f64 {
        self.wait_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Samples delivered.
    pub fn sample_count(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Batches delivered.
    pub fn batch_count(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Bytes fetched from the source.
    pub fn byte_count(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_accumulates() {
        let c = AtomicU64::new(0);
        let v = PipelineStats::timed(&c, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(c.load(Ordering::Relaxed) >= 1_000_000);
    }

    #[test]
    fn second_conversions() {
        let s = PipelineStats::default();
        s.fetch_ns.store(2_500_000_000, Ordering::Relaxed);
        assert!((s.fetch_seconds() - 2.5).abs() < 1e-9);
    }
}
