//! Property tests for the loading pipeline: exactly-once delivery and
//! correct batching must hold for arbitrary thread counts, batch sizes,
//! prefetch depths and epoch counts.

use proptest::prelude::*;
use sciml_codec::cosmoflow as cf;
use sciml_codec::Op;
use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_pipeline::decoder::CosmoPluginCpu;
use sciml_pipeline::source::VecSource;
use sciml_pipeline::{Pipeline, PipelineConfig};
use std::sync::Arc;

fn tiny_blobs(n: usize) -> Vec<Vec<u8>> {
    let cfg = CosmoFlowConfig {
        grid: 6,
        halos: 3,
        mass_scale: 30.0,
        background: 1,
        seed: 5,
    };
    let g = UniverseGenerator::new(cfg);
    (0..n as u64)
        .map(|i| cf::encode(&g.generate(i)).to_bytes())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exactly_once_under_arbitrary_configs(
        n in 1usize..20,
        batch in 1usize..7,
        readers in 1usize..5,
        decoders in 1usize..5,
        prefetch in 1usize..6,
        epochs in 1usize..4,
        drop_remainder in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let p = Pipeline::launch(
            Arc::new(VecSource::new(tiny_blobs(n))),
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                batch_size: batch,
                reader_threads: readers,
                decode_threads: decoders,
                prefetch,
                epochs,
                seed,
                drop_remainder,
                pool_capacity: None,
            },
        )
        .unwrap();
        let (batches, stats) = p.collect_all().unwrap();

        // Every fetched sample was fetched exactly once per epoch.
        prop_assert_eq!(stats.sample_count() as usize, n * epochs);

        for epoch in 0..epochs {
            let mut seen: Vec<usize> = batches
                .iter()
                .filter(|b| b.epoch == epoch)
                .flat_map(|b| b.indices.iter().copied())
                .collect();
            seen.sort_unstable();
            if drop_remainder {
                // Only full batches are delivered; each index at most once.
                prop_assert!(seen.len() <= n);
                prop_assert!(seen.windows(2).all(|w| w[0] != w[1]));
                prop_assert_eq!(seen.len() % batch, 0);
            } else {
                prop_assert_eq!(&seen, &(0..n).collect::<Vec<_>>());
            }
        }

        // Every batch is internally consistent.
        for b in &batches {
            prop_assert!(b.len() <= batch);
            prop_assert_eq!(b.data.len(), b.len() * b.sample_len);
            prop_assert_eq!(b.indices.len(), b.len());
            prop_assert_eq!(b.labels.len(), b.len());
        }
    }

    #[test]
    fn sample_payloads_are_correct_regardless_of_arrival_order(
        readers in 1usize..5,
        decoders in 1usize..5,
        seed in any::<u64>(),
    ) {
        let n = 8;
        let blobs = tiny_blobs(n);
        // Ground truth decodes.
        let expect: Vec<Vec<sciml_half::F16>> = blobs
            .iter()
            .map(|b| {
                let enc = cf::EncodedCosmo::from_bytes(b).unwrap();
                cf::decode(&enc, Op::Log1p).unwrap()
            })
            .collect();
        let p = Pipeline::launch(
            Arc::new(VecSource::new(blobs)),
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            PipelineConfig {
                batch_size: 3,
                reader_threads: readers,
                decode_threads: decoders,
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        let (batches, _) = p.collect_all().unwrap();
        for b in &batches {
            for (i, &idx) in b.indices.iter().enumerate() {
                prop_assert_eq!(b.sample(i), &expect[idx][..], "sample {}", idx);
            }
        }
    }
}
