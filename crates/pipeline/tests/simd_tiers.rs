//! Cross-tier pipeline determinism: the full pooled pipeline (readers,
//! decode threads, buffer pool, batch assembly) must emit byte-identical
//! tensors under every SIMD tier this host supports. Forcing `scalar`
//! therefore reproduces the pre-SIMD pipeline output exactly, and every
//! vector tier must match it — the end-to-end form of the kernel-level
//! bit-exactness proofs in `sciml-half` and `sciml-codec`.

use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_half::F16;
use sciml_pipeline::batch::Label;
use sciml_pipeline::decoder::{CosmoPluginCpu, DeepCamPluginCpu};
use sciml_pipeline::source::VecSource;
use sciml_pipeline::{DecoderPlugin, Pipeline, PipelineConfig};
use sciml_simd::{force, supported_levels, SimdLevel};
use std::collections::BTreeMap;
use std::sync::Arc;

const N: usize = 8;

fn cosmo_blobs() -> Vec<Vec<u8>> {
    let g = UniverseGenerator::new(CosmoFlowConfig {
        grid: 8,
        halos: 6,
        mass_scale: 30.0,
        background: 1,
        seed: 23,
    });
    (0..N as u64)
        .map(|i| cf::encode(&g.generate(i)).to_bytes())
        .collect()
}

fn deepcam_blobs() -> Vec<Vec<u8>> {
    let g = ClimateGenerator::new(DeepCamConfig::test_small());
    (0..N as u64)
        .map(|i| {
            let (enc, _) = dc::encode(&g.generate(i), &dc::EncoderConfig::default());
            enc.to_bytes()
        })
        .collect()
}

fn f16_digest(data: &[F16]) -> u64 {
    data.iter().fold(0u64, |h, v| {
        h.wrapping_mul(31).wrapping_add(v.to_bits() as u64)
    })
}

type Digests = BTreeMap<(usize, Vec<usize>), (u64, Vec<Label>)>;

/// Runs the full pipeline with `level` forced (the force override is
/// process-global, so it reaches the spawned decode threads) and
/// returns per-batch tensor digests.
fn run_at(level: SimdLevel, blobs: Vec<Vec<u8>>, plugin: Arc<dyn DecoderPlugin>) -> Digests {
    let _g = force(Some(level));
    let p = Pipeline::launch(
        Arc::new(VecSource::new(blobs)),
        plugin,
        PipelineConfig {
            batch_size: 3,
            reader_threads: 2,
            decode_threads: 2,
            prefetch: 4,
            epochs: 2,
            seed: 9,
            drop_remainder: false,
            pool_capacity: None,
        },
    )
    .unwrap();
    let (batches, _) = p.collect_all().unwrap();
    let mut digests = Digests::new();
    for b in batches {
        let key = (b.epoch, b.indices.clone());
        let val = (f16_digest(&b.data), b.labels.clone());
        assert!(digests.insert(key, val).is_none(), "duplicate batch");
    }
    digests
}

type Workload = (&'static str, Vec<Vec<u8>>, Arc<dyn DecoderPlugin>);

#[test]
fn pipeline_output_identical_across_simd_tiers() {
    let workloads: Vec<Workload> = vec![
        (
            "cosmo",
            cosmo_blobs(),
            Arc::new(CosmoPluginCpu { op: Op::Log1p }),
        ),
        (
            "deepcam",
            deepcam_blobs(),
            Arc::new(DeepCamPluginCpu {
                op: Op::Normalize {
                    scale: 0.05,
                    offset: 270.0,
                },
            }),
        ),
    ];
    for (name, blobs, plugin) in workloads {
        let want = run_at(SimdLevel::Scalar, blobs.clone(), Arc::clone(&plugin));
        assert!(!want.is_empty());
        for lvl in supported_levels() {
            let got = run_at(lvl, blobs.clone(), Arc::clone(&plugin));
            assert_eq!(got, want, "{name} pipeline output diverged at tier {lvl:?}");
        }
    }
}
