//! Pool-reuse integration tests: the pooled zero-copy path must emit
//! batches byte-identical to the per-sample-alloc baseline across
//! multiple epochs, while actually recycling buffers and keeping idle
//! memory bounded.

use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_half::F16;
use sciml_pipeline::batch::Label;
use sciml_pipeline::decoder::{CosmoPluginCpu, DeepCamPluginCpu};
use sciml_pipeline::source::VecSource;
use sciml_pipeline::{DecoderPlugin, Pipeline, PipelineConfig};
use std::collections::BTreeMap;
use std::sync::Arc;

const N: usize = 10;
const EPOCHS: usize = 3;

fn cosmo_blobs() -> Vec<Vec<u8>> {
    let g = UniverseGenerator::new(CosmoFlowConfig {
        grid: 8,
        halos: 6,
        mass_scale: 30.0,
        background: 1,
        seed: 11,
    });
    (0..N as u64)
        .map(|i| cf::encode(&g.generate(i)).to_bytes())
        .collect()
}

fn deepcam_blobs() -> Vec<Vec<u8>> {
    let g = ClimateGenerator::new(DeepCamConfig::test_small());
    (0..N as u64)
        .map(|i| {
            let (enc, _) = dc::encode(&g.generate(i), &dc::EncoderConfig::default());
            enc.to_bytes()
        })
        .collect()
}

fn config(pool_capacity: Option<usize>) -> PipelineConfig {
    PipelineConfig {
        batch_size: 4,
        reader_threads: 2,
        decode_threads: 2,
        prefetch: 4,
        epochs: EPOCHS,
        seed: 77,
        drop_remainder: false,
        pool_capacity,
    }
}

fn f16_digest(data: &[F16]) -> u64 {
    data.iter().fold(0u64, |h, v| {
        h.wrapping_mul(31).wrapping_add(v.to_bits() as u64)
    })
}

/// Batch fingerprints keyed by (epoch, member indices): batch
/// composition is deterministic under positional scheduling, so the
/// same key must map to the same tensor bytes and labels in every run.
type Digests = BTreeMap<(usize, Vec<usize>), (u64, Vec<Label>)>;

/// Runs a pipeline to completion, dropping each batch after digesting
/// it (so pooled tensors actually recycle), and returns the digests
/// plus the pool that backed the run.
fn run(
    blobs: Vec<Vec<u8>>,
    plugin: Arc<dyn DecoderPlugin>,
    pool_capacity: Option<usize>,
) -> (Digests, Arc<sciml_pipeline::BufferPool>) {
    let mut p = Pipeline::launch(
        Arc::new(VecSource::new(blobs)),
        plugin,
        config(pool_capacity),
    )
    .unwrap();
    let pool = p.pool();
    let mut digests = Digests::new();
    while let Some(b) = p.next_batch().unwrap() {
        let key = (b.epoch, b.indices.clone());
        let val = (f16_digest(&b.data), b.labels.clone());
        assert!(digests.insert(key, val).is_none(), "duplicate batch");
    }
    (digests, pool)
}

fn assert_pooled_run_matches_unpooled(blobs: Vec<Vec<u8>>, plugin: Arc<dyn DecoderPlugin>) {
    let (pooled, pool) = run(blobs.clone(), Arc::clone(&plugin), None);
    let (unpooled, off) = run(blobs, plugin, Some(0));

    assert_eq!(
        pooled, unpooled,
        "pooled batches must be byte-identical to per-sample-alloc batches"
    );
    assert_eq!(pooled.len(), EPOCHS * N.div_ceil(4));

    // The pooled run actually recycled buffers; the disabled pool never did.
    assert!(pool.hits() >= N as u64, "hits {}", pool.hits());
    assert_eq!(off.hits(), 0);
    assert_eq!(off.resident_bytes(), 0);

    // Idle memory stays bounded: at most `capacity` tensors plus
    // `capacity` fetch buffers parked, each no larger than a batch /
    // the biggest blob ever seen.
    let cap = config(None).effective_pool_capacity() as i64;
    let bound = cap * 4 * 1024 * 1024; // 4 MiB per parked buffer is generous here
    assert!(
        pool.resident_bytes() <= bound,
        "resident {} > bound {bound}",
        pool.resident_bytes()
    );
}

#[test]
fn cosmo_pooled_batches_byte_identical_across_epochs() {
    assert_pooled_run_matches_unpooled(cosmo_blobs(), Arc::new(CosmoPluginCpu { op: Op::Log1p }));
}

#[test]
fn deepcam_pooled_batches_byte_identical_across_epochs() {
    assert_pooled_run_matches_unpooled(
        deepcam_blobs(),
        Arc::new(DeepCamPluginCpu { op: Op::Identity }),
    );
}

#[test]
fn pool_capacity_zero_still_delivers_all_batches() {
    let (digests, pool) = run(
        cosmo_blobs(),
        Arc::new(CosmoPluginCpu { op: Op::Log1p }),
        Some(0),
    );
    assert_eq!(digests.len(), EPOCHS * N.div_ceil(4));
    assert_eq!(pool.capacity(), 0);
}

#[test]
fn implausible_pool_capacity_is_rejected() {
    let err = Pipeline::launch(
        Arc::new(VecSource::new(cosmo_blobs())),
        Arc::new(CosmoPluginCpu { op: Op::Log1p }),
        config(Some(1 << 20)),
    )
    .err()
    .expect("must reject");
    let msg = format!("{err}");
    assert!(msg.contains("pool_capacity"), "got: {msg}");
}
