//! Host calibration: measure the real codecs on *this* machine and
//! build a workload profile + platform spec for it.
//!
//! The shipped [`WorkloadProfile`]s carry Cori-V100-referenced constants
//! so Figs. 8–12 reproduce the paper's platforms. This module provides
//! the honest counterpart: run the actual encoder/decoder/inflate code
//! on locally generated samples, measure single-core rates, and scale
//! them to full-sample sizes — so the epoch model can also answer "what
//! would this pipeline do on *my* node?". Used by `examples/
//! platform_whatif.rs`-style studies and validated by smoke tests only
//! (wall-clock measurements are not asserted against tight bounds).

use crate::spec::{BandwidthCurve, PlatformSpec};
use crate::workload::WorkloadProfile;
use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_data::serialize;
use sciml_gpusim::GpuSpec;
use std::time::Instant;

/// Measured single-core rates on the local host (bytes of *raw-sample
/// equivalent* processed per second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostRates {
    /// Baseline preprocessing (parse + per-value op + FP16 cast).
    pub preproc_bps: f64,
    /// gzip inflate, measured on the compressed baseline payload.
    pub inflate_bps: f64,
    /// Custom-codec decode with fused op.
    pub decode_bps: f64,
}

/// Measures CosmoFlow-path rates at a reduced grid and returns
/// raw-equivalent single-core rates.
pub fn measure_cosmoflow_rates(grid: usize) -> HostRates {
    let cfg = CosmoFlowConfig {
        grid,
        ..CosmoFlowConfig::default()
    };
    let s = UniverseGenerator::new(cfg).generate(0);
    let raw = serialize::cosmo_to_payload(&s);
    let gz = sciml_compress::gzip_compress(&raw, sciml_compress::Level::Default);
    let enc = cf::encode(&s);
    let raw_bytes = raw.len() as f64;

    let time = |mut f: Box<dyn FnMut()>| -> f64 {
        // One warmup, then enough iterations to pass ~30 ms.
        f();
        let t0 = Instant::now();
        let mut iters = 0u32;
        while t0.elapsed().as_secs_f64() < 0.03 {
            f();
            iters += 1;
        }
        t0.elapsed().as_secs_f64() / iters.max(1) as f64
    };

    let t_pre = {
        let s = s.clone();
        time(Box::new(move || {
            let _ = cf::baseline_preprocess(&s, Op::Log1p);
        }))
    };
    let t_inf = {
        let gz = gz.clone();
        time(Box::new(move || {
            let _ = sciml_compress::gzip_decompress(&gz).expect("inflate");
        }))
    };
    let t_dec = {
        let enc = enc.clone();
        time(Box::new(move || {
            let _ = cf::decode(&enc, Op::Log1p).expect("decode");
        }))
    };

    HostRates {
        preproc_bps: raw_bytes / t_pre,
        inflate_bps: raw_bytes / t_inf,
        decode_bps: raw_bytes / t_dec,
    }
}

/// Measures DeepCAM-path rates at a reduced image size.
pub fn measure_deepcam_rates(width: usize, height: usize, channels: usize) -> HostRates {
    let cfg = DeepCamConfig {
        width,
        height,
        channels,
        ..DeepCamConfig::default()
    };
    let s = ClimateGenerator::new(cfg).generate(0);
    let h5 = serialize::deepcam_to_h5(&s).expect("serialize");
    let gz = sciml_compress::gzip_compress(&h5, sciml_compress::Level::Default);
    let (enc, _) = dc::encode(&s, &dc::EncoderConfig::default());
    let raw_bytes = s.raw_f32_bytes() as f64;
    let op = Op::Normalize {
        scale: 0.05,
        offset: 0.0,
    };

    let time = |mut f: Box<dyn FnMut()>| -> f64 {
        f();
        let t0 = Instant::now();
        let mut iters = 0u32;
        while t0.elapsed().as_secs_f64() < 0.03 {
            f();
            iters += 1;
        }
        t0.elapsed().as_secs_f64() / iters.max(1) as f64
    };

    let t_pre = {
        let h5 = h5.clone();
        time(Box::new(move || {
            let s = serialize::deepcam_from_h5(&h5).expect("parse");
            let _: Vec<sciml_half::F16> = s
                .data
                .iter()
                .map(|&v| sciml_half::F16::from_f32(op.apply(v)))
                .collect();
        }))
    };
    let t_inf = {
        let gz = gz.clone();
        time(Box::new(move || {
            let _ = sciml_compress::gzip_decompress(&gz).expect("inflate");
        }))
    };
    let t_dec = {
        let enc = enc.clone();
        time(Box::new(move || {
            let _ = dc::decode(&enc, op).expect("decode");
        }))
    };

    HostRates {
        preproc_bps: raw_bytes / t_pre,
        inflate_bps: raw_bytes / t_inf,
        decode_bps: raw_bytes / t_dec,
    }
}

/// Builds a workload profile whose host-side costs come from local
/// measurements (scaled to full-sample raw sizes); storage sizes and
/// device-side constants stay paper-anchored.
pub fn calibrated_profile(base: &WorkloadProfile, rates: HostRates) -> WorkloadProfile {
    let mut w = base.clone();
    w.preproc_1core_s = w.raw_bytes / rates.preproc_bps;
    w.inflate_1core_s = w.raw_bytes / rates.inflate_bps;
    w.cpu_decode_1core_s = w.raw_bytes / rates.decode_bps;
    w
}

/// A platform spec describing the local host (storage numbers are
/// placeholders to override with `hdparm`/`fio` measurements; the GPU is
/// the simulated V100).
pub fn localhost_spec(cores: u32) -> PlatformSpec {
    PlatformSpec {
        name: "localhost",
        gpus_per_node: 1,
        gpu: GpuSpec::V100,
        host_memory: 16 * 1024 * 1024 * 1024,
        host_mem_bw: 20e9,
        nvme_capacity: 256_000_000_000,
        nvme_read_bw: 1.5e9,
        shared_fs_bw: 0.5e9,
        h2d: BandwidthCurve::from_mb_gbs(&[(4.0, 4.0), (64.0, 8.0)]),
        cpu_cores: cores,
        cpu_freq_ghz: 2.4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::{EpochModel, ExperimentConfig};
    use crate::workload::Format;

    #[test]
    fn cosmoflow_rates_are_positive_and_decode_beats_baseline() {
        let r = measure_cosmoflow_rates(16);
        assert!(r.preproc_bps > 0.0 && r.inflate_bps > 0.0 && r.decode_bps > 0.0);
        // The fused table decode processes raw-equivalent bytes faster
        // than the per-voxel baseline — the paper's host-side win. Under
        // debug builds with the test suite running in parallel, wall
        // timing is noisy; allow generous slack (release builds show the
        // full gap, see bench_cosmoflow_codec).
        assert!(
            r.decode_bps > r.preproc_bps * 0.3,
            "decode {:.0} vs preproc {:.0}",
            r.decode_bps,
            r.preproc_bps
        );
    }

    #[test]
    fn deepcam_rates_are_positive() {
        let r = measure_deepcam_rates(96, 64, 2);
        assert!(r.preproc_bps > 0.0 && r.inflate_bps > 0.0 && r.decode_bps > 0.0);
    }

    #[test]
    fn calibrated_profile_feeds_the_epoch_model() {
        let rates = HostRates {
            preproc_bps: 200e6,
            inflate_bps: 800e6,
            decode_bps: 2e9,
        };
        let w = calibrated_profile(&WorkloadProfile::cosmoflow(), rates);
        assert!((w.preproc_1core_s - w.raw_bytes / 200e6).abs() < 1e-9);
        let r = EpochModel::evaluate(&ExperimentConfig {
            platform: localhost_spec(8),
            workload: w,
            format: Format::PluginCpu,
            samples_per_node: 64,
            staged: true,
            batch: 2,
        });
        assert!(r.node_throughput > 0.0);
    }

    #[test]
    fn localhost_spec_is_usable() {
        let p = localhost_spec(4);
        assert_eq!(p.gpus_per_node, 1);
        assert_eq!(p.cores_per_gpu(), 4.0);
    }
}
