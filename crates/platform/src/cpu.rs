//! Host CPU feature facade: the platform-level view of the runtime
//! SIMD dispatch layer.
//!
//! ISSUE-level placement note: the probe itself lives in the zero-dep
//! leaf crate `sciml-simd` (not here) because `sciml-platform` depends
//! on `sciml-codec`, whose decode kernels need the probe — putting it
//! here would create a dependency cycle. This module is the public
//! facade the CLI and the performance model consume: it re-exports the
//! probe API and adds the per-workload kernel-plan report.

pub use sciml_simd::{
    active_level, arch_level, detected_level, dispatch_counts, env_level, env_request, force,
    is_supported, level_total, supported_levels, ForceGuard, Kernel, SimdLevel, ALL_KERNELS,
    ALL_LEVELS, SIMD_ENV,
};

/// One decode kernel's resolved dispatch path on this host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPath {
    /// Kernel identity (`cosmo_gather`, `deepcam_line`, …).
    pub kernel: Kernel,
    /// The workload/stage the kernel serves, for display.
    pub stage: &'static str,
    /// Tier the dispatcher will select for it right now.
    pub level: SimdLevel,
    /// Human description of the vector strategy at that tier.
    pub strategy: &'static str,
}

/// The dispatch plan for every decode kernel at the currently active
/// tier (env override and force guards included, clamped to this
/// architecture — the reported level is the level that will run).
pub fn kernel_plan() -> Vec<KernelPath> {
    let lvl = arch_level();
    ALL_KERNELS
        .iter()
        .map(|&kernel| KernelPath {
            kernel,
            stage: match kernel {
                Kernel::CosmoGather => "CosmoFlow LUT decode",
                Kernel::DeepcamLine => "DeepCAM delta decode",
                Kernel::HalfNarrow => "F32\u{2192}F16 emission",
                Kernel::HalfWiden => "F16\u{2192}F32 load",
            },
            level: lvl,
            strategy: strategy(kernel, lvl),
        })
        .collect()
}

fn strategy(kernel: Kernel, level: SimdLevel) -> &'static str {
    match (kernel, level) {
        (_, SimdLevel::Scalar) => "scalar reference loop",
        (Kernel::CosmoGather, SimdLevel::Avx2) => "8-voxel row gather + in-register transpose",
        (Kernel::CosmoGather, SimdLevel::Sse42) => "4-voxel row gather + in-register transpose",
        (Kernel::CosmoGather, SimdLevel::Neon) => "4-voxel gather via vld4 deinterleave",
        (Kernel::DeepcamLine, SimdLevel::Avx2) => "8-code integer bit-assembly per segment",
        (Kernel::DeepcamLine, SimdLevel::Sse42 | SimdLevel::Neon) => {
            "4-code integer bit-assembly per segment"
        }
        (Kernel::HalfNarrow, SimdLevel::Avx2) => "F16C vcvtps2ph, 8 lanes",
        (Kernel::HalfNarrow, SimdLevel::Sse42 | SimdLevel::Neon) => {
            "integer round-to-nearest-even narrow, 4 lanes"
        }
        (Kernel::HalfWiden, SimdLevel::Avx2) => "F16C vcvtph2ps, 8 lanes",
        (Kernel::HalfWiden, SimdLevel::Sse42 | SimdLevel::Neon) => {
            "integer exponent rebias widen, 4 lanes"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_kernel_at_one_level() {
        let plan = kernel_plan();
        assert_eq!(plan.len(), ALL_KERNELS.len());
        for p in &plan {
            assert_eq!(p.level, arch_level());
            assert!(!p.strategy.is_empty() && !p.stage.is_empty());
        }
    }

    #[test]
    fn forced_scalar_plan_reports_scalar_strategies() {
        let _g = force(Some(SimdLevel::Scalar));
        for p in kernel_plan() {
            assert_eq!(p.level, SimdLevel::Scalar);
            assert_eq!(p.strategy, "scalar reference loop");
        }
    }
}
