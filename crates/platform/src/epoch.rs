//! Steady-state epoch model: storage tiering, stage times, overlap.
//!
//! For a configuration (platform × workload × format × dataset size ×
//! staged? × batch) the model computes the per-sample time of each
//! pipeline stage and takes the bottleneck as the steady-state
//! throughput (the loader, decoder and device overlap via prefetching,
//! which the real `sciml_pipeline` crate implements with threads). The
//! central mechanism of the paper falls out of the tiering rule: encoded
//! datasets fit in a memory level that raw ones do not.

use crate::spec::PlatformSpec;
use crate::workload::{Format, WorkloadProfile};

/// Where the dataset is read from each epoch (steady state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageTier {
    /// Cached in host DRAM (fits in memory).
    HostMemory,
    /// Node-local NVMe (staged and fits).
    Nvme,
    /// Shared parallel file system.
    SharedFs,
}

impl StorageTier {
    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            StorageTier::HostMemory => "host-mem",
            StorageTier::Nvme => "nvme",
            StorageTier::SharedFs => "shared-fs",
        }
    }
}

/// One experiment point.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Node/platform model.
    pub platform: PlatformSpec,
    /// Workload profile.
    pub workload: WorkloadProfile,
    /// Pipeline variant.
    pub format: Format,
    /// Samples assigned per **node** (Fig. 8 uses per-node counts,
    /// Figs. 10–11 use per-GPU counts × `gpus_per_node`).
    pub samples_per_node: u64,
    /// Whether the dataset is staged to node-local NVMe.
    pub staged: bool,
    /// Local batch size per GPU.
    pub batch: usize,
}

/// Per-sample stage times (seconds), the Fig. 9 / Fig. 12 breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBreakdown {
    /// Storage read (host timeline).
    pub read_s: f64,
    /// Host preprocessing / decode / pass-through (host timeline).
    pub host_s: f64,
    /// Host→device transfer (device timeline).
    pub h2d_s: f64,
    /// On-device decode (GPU plugin only).
    pub gpu_decode_s: f64,
    /// Forward + backward step.
    pub step_s: f64,
    /// Allreduce / synchronization jitter.
    pub allreduce_s: f64,
}

impl StageBreakdown {
    /// The bottleneck stage time under full overlap: the input-side
    /// stages run concurrently with the device stages.
    pub fn bottleneck_s(&self) -> f64 {
        let input = self.read_s.max(self.host_s).max(self.h2d_s);
        let device = self.gpu_decode_s + self.step_s + self.allreduce_s;
        input.max(device)
    }

    /// Whether the device is starved by the input pipeline.
    pub fn input_bound(&self) -> bool {
        let device = self.gpu_decode_s + self.step_s;
        self.read_s.max(self.host_s).max(self.h2d_s) > device
    }
}

/// Result of evaluating one configuration.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Samples per second for the whole node.
    pub node_throughput: f64,
    /// Samples per second per GPU.
    pub gpu_throughput: f64,
    /// Where reads are served from in steady state.
    pub tier: StorageTier,
    /// Per-sample stage times.
    pub breakdown: StageBreakdown,
}

/// The analytic epoch model.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochModel;

impl EpochModel {
    /// Evaluates one configuration.
    pub fn evaluate(cfg: &ExperimentConfig) -> ExperimentResult {
        let p = &cfg.platform;
        let w = &cfg.workload;
        let stored = w.stored_bytes(cfg.format);
        let dataset_bytes = stored * cfg.samples_per_node as f64;

        // Storage tier: host DRAM if the dataset leaves room for the
        // application (20% headroom), else staged NVMe, else shared FS.
        let tier = if dataset_bytes <= p.host_memory as f64 * 0.8 {
            StorageTier::HostMemory
        } else if cfg.staged && dataset_bytes <= p.nvme_capacity as f64 {
            StorageTier::Nvme
        } else {
            StorageTier::SharedFs
        };
        let tier_bw = match tier {
            StorageTier::HostMemory => p.host_mem_bw,
            StorageTier::Nvme => p.nvme_read_bw,
            StorageTier::SharedFs => p.shared_fs_bw,
        };
        // The tier bandwidth is shared by every GPU process on the node.
        let read_s = stored / (tier_bw / p.gpus_per_node as f64);

        // Host software stage: per-sample single-core work spread over
        // the loader's worker pool (bounded by the workload's framework
        // worker count and by this GPU's core share), scaled by the
        // platform clock and the workload's stack efficiency there.
        let workers = p.cores_per_gpu().min(w.max_workers as f64);
        let host_rate = workers * p.host_rate_factor() * w.host_efficiency(p.name);
        let host_s = w.host_1core_s(cfg.format) / host_rate;

        // Host→device transfer: one batch moves batch × bytes; pageable
        // bandwidth depends on that transfer size. The CPU plugin ships
        // FP16 from freshly written (cache-cold, pageable) buffers; the
        // paper attributes part of the GPU plugin's edge to "reduced
        // pressure on the system bus", modeled as a 25% bandwidth
        // penalty for host-decoded tensors.
        let h2d_bytes = w.h2d_bytes(cfg.format);
        let transfer = h2d_bytes * cfg.batch as f64;
        let mut h2d_bw = p.h2d.at(transfer);
        if cfg.format == Format::PluginCpu {
            h2d_bw *= 0.75;
        }
        let h2d_s = h2d_bytes / h2d_bw;

        // Device stages.
        let gpu_decode_s = if cfg.format == Format::PluginGpu {
            w.gpu_decode_s(&p.gpu)
        } else {
            0.0
        };
        let step_s = w.step_s(&p.gpu, cfg.batch);

        // Allreduce jitter grows when the input pipeline starves the
        // collective (Fig. 9: the plugin "reduc[es] the fluctuations
        // captured during the model synchronization allreduce").
        let mut b = StageBreakdown {
            read_s,
            host_s,
            h2d_s,
            gpu_decode_s,
            step_s,
            allreduce_s: w.allreduce_jitter_s,
        };
        if b.input_bound() {
            b.allreduce_s *= 2.0;
        }

        let per_sample = b.bottleneck_s();
        let gpu_throughput = 1.0 / per_sample;
        ExperimentResult {
            node_throughput: gpu_throughput * p.gpus_per_node as f64,
            gpu_throughput,
            tier,
            breakdown: b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(
        platform: PlatformSpec,
        workload: WorkloadProfile,
        format: Format,
        samples_per_node: u64,
        staged: bool,
        batch: usize,
    ) -> ExperimentConfig {
        ExperimentConfig {
            platform,
            workload,
            format,
            samples_per_node,
            staged,
            batch,
        }
    }

    fn tput(c: &ExperimentConfig) -> f64 {
        EpochModel::evaluate(c).node_throughput
    }

    // ----- CosmoFlow (Figs. 10, 11) -----

    #[test]
    fn cosmo_small_set_is_cached_in_host_memory() {
        // 128 samples/GPU × 8 GPUs × 33.5 MB ≈ 34 GB « 384 GB.
        let c = cfg(
            PlatformSpec::cori_v100(),
            WorkloadProfile::cosmoflow(),
            Format::Base,
            128 * 8,
            true,
            4,
        );
        assert_eq!(EpochModel::evaluate(&c).tier, StorageTier::HostMemory);
    }

    #[test]
    fn cosmo_plugin_speedup_3_to_4x_on_cori_small_set() {
        for p in [PlatformSpec::cori_v100(), PlatformSpec::cori_a100()] {
            let n = 128 * p.gpus_per_node as u64;
            let base = tput(&cfg(
                p.clone(),
                WorkloadProfile::cosmoflow(),
                Format::Base,
                n,
                true,
                4,
            ));
            let plug = tput(&cfg(
                p.clone(),
                WorkloadProfile::cosmoflow(),
                Format::PluginGpu,
                n,
                true,
                4,
            ));
            let speedup = plug / base;
            assert!((2.0..6.0).contains(&speedup), "{}: {speedup}", p.name);
        }
    }

    #[test]
    fn cosmo_plugin_speedup_5_to_8x_on_summit_small_set() {
        let p = PlatformSpec::summit();
        let n = 128 * 6;
        let base = tput(&cfg(
            p.clone(),
            WorkloadProfile::cosmoflow(),
            Format::Base,
            n,
            true,
            1,
        ));
        let plug = tput(&cfg(
            p,
            WorkloadProfile::cosmoflow(),
            Format::PluginGpu,
            n,
            true,
            1,
        ));
        let speedup = plug / base;
        assert!((4.0..10.0).contains(&speedup), "{speedup}");
    }

    #[test]
    fn cosmo_large_set_speedup_reaches_order_of_magnitude() {
        // 2048/GPU × 8 × 33.5 MB ≈ 550 GB: raw spills out of host memory,
        // encoded (137 GB) stays cached — the central caching mechanism.
        let p = PlatformSpec::cori_v100();
        let n = 2048 * 8;
        let base = EpochModel::evaluate(&cfg(
            p.clone(),
            WorkloadProfile::cosmoflow(),
            Format::Base,
            n,
            false,
            4,
        ));
        let plug = EpochModel::evaluate(&cfg(
            p,
            WorkloadProfile::cosmoflow(),
            Format::PluginGpu,
            n,
            false,
            4,
        ));
        assert_eq!(base.tier, StorageTier::SharedFs);
        assert_eq!(plug.tier, StorageTier::HostMemory);
        let speedup = plug.node_throughput / base.node_throughput;
        assert!(speedup >= 7.0, "{speedup}");
    }

    #[test]
    fn cosmo_gzip_is_slower_than_base_on_small_set() {
        // §IX-B: "the use of gzipped formatting reduces throughput by up
        // to 1.5×".
        for p in PlatformSpec::all() {
            let n = 128 * p.gpus_per_node as u64;
            let base = tput(&cfg(
                p.clone(),
                WorkloadProfile::cosmoflow(),
                Format::Base,
                n,
                true,
                4,
            ));
            let gz = tput(&cfg(
                p.clone(),
                WorkloadProfile::cosmoflow(),
                Format::Gzip,
                n,
                true,
                4,
            ));
            let slowdown = base / gz;
            assert!((1.0..1.8).contains(&slowdown), "{}: {slowdown}", p.name);
        }
    }

    #[test]
    fn cosmo_staging_helps_large_set_on_cori_but_not_summit() {
        // §IX-B: staging improves by up to 1.5× on Cori; "the difference
        // for Summit is within 10%" (512 GB hosts cache even the large
        // raw set).
        let w = WorkloadProfile::cosmoflow;
        let cori = PlatformSpec::cori_v100();
        let unstaged = tput(&cfg(cori.clone(), w(), Format::Base, 2048 * 8, false, 4));
        let staged = tput(&cfg(cori, w(), Format::Base, 2048 * 8, true, 4));
        let gain = staged / unstaged;
        assert!((1.2..1.8).contains(&gain), "cori gain {gain}");

        let summit = PlatformSpec::summit();
        let s_un = tput(&cfg(summit.clone(), w(), Format::Base, 2048 * 6, false, 4));
        let s_st = tput(&cfg(summit, w(), Format::Base, 2048 * 6, true, 4));
        assert!((s_st / s_un - 1.0).abs() < 0.10, "summit {}", s_st / s_un);
    }

    #[test]
    fn cosmo_baseline_is_insensitive_to_batch_size() {
        // §IX-B: "the base case does not change significantly with the
        // batch size" (it is host/IO bound).
        let p = PlatformSpec::cori_v100();
        let n = 128 * 8;
        let b1 = tput(&cfg(
            p.clone(),
            WorkloadProfile::cosmoflow(),
            Format::Base,
            n,
            true,
            1,
        ));
        let b8 = tput(&cfg(
            p,
            WorkloadProfile::cosmoflow(),
            Format::Base,
            n,
            true,
            8,
        ));
        assert!((b8 / b1 - 1.0).abs() < 0.25, "{}", b8 / b1);
    }

    // ----- DeepCAM (Figs. 8, 9) -----

    #[test]
    fn deepcam_large_set_slows_baseline_1_2_to_2_4x() {
        let p = PlatformSpec::cori_v100();
        let small = tput(&cfg(
            p.clone(),
            WorkloadProfile::deepcam(),
            Format::Base,
            1536,
            true,
            4,
        ));
        let large = tput(&cfg(
            p,
            WorkloadProfile::deepcam(),
            Format::Base,
            12288,
            true,
            4,
        ));
        let slowdown = small / large;
        assert!((1.2..2.6).contains(&slowdown), "{slowdown}");
    }

    #[test]
    fn deepcam_plugin_speedup_on_cori_a100_approaches_3x() {
        let p = PlatformSpec::cori_a100();
        let mut best = 0.0f64;
        for (n, staged, batch) in [
            (1536u64, true, 4usize),
            (1536, false, 4),
            (12288, true, 8),
            (12288, false, 8),
        ] {
            let base = tput(&cfg(
                p.clone(),
                WorkloadProfile::deepcam(),
                Format::Base,
                n,
                staged,
                batch,
            ));
            let plug = tput(&cfg(
                p.clone(),
                WorkloadProfile::deepcam(),
                Format::PluginGpu,
                n,
                staged,
                batch,
            ));
            best = best.max(plug / base);
        }
        assert!((2.5..4.0).contains(&best), "{best}");
    }

    #[test]
    fn deepcam_summit_baseline_beats_cori_v100_node_at_batch_4() {
        // §IX-A: "At batch size of 4, the 6-V100 Summit node outperforms
        // an 8-V100 Cori node" for the baseline (NVLink + fast NVMe).
        let s = tput(&cfg(
            PlatformSpec::summit(),
            WorkloadProfile::deepcam(),
            Format::Base,
            12288,
            true,
            4,
        ));
        let c = tput(&cfg(
            PlatformSpec::cori_v100(),
            WorkloadProfile::deepcam(),
            Format::Base,
            12288,
            true,
            4,
        ));
        assert!(s > c, "summit {s} vs cori {c}");
    }

    #[test]
    fn deepcam_summit_plugin_gain_is_limited() {
        // §IX-A: "limited improvement with gpu-plugin (limited to 1.3×)".
        let p = PlatformSpec::summit();
        let mut worst = 1.0f64;
        for (n, staged) in [(1536u64, true), (12288, true)] {
            let base = tput(&cfg(
                p.clone(),
                WorkloadProfile::deepcam(),
                Format::Base,
                n,
                staged,
                4,
            ));
            let plug = tput(&cfg(
                p.clone(),
                WorkloadProfile::deepcam(),
                Format::PluginGpu,
                n,
                staged,
                4,
            ));
            worst = worst.max(plug / base);
        }
        assert!(worst < 1.6, "{worst}");
    }

    #[test]
    fn deepcam_gpu_plugin_beats_cpu_plugin_unstaged() {
        // §IX-A: "the GPU plugin is up to 1.5× faster than the CPU for
        // unstaged data".
        let p = PlatformSpec::cori_v100();
        let cpu = tput(&cfg(
            p.clone(),
            WorkloadProfile::deepcam(),
            Format::PluginCpu,
            12288,
            false,
            4,
        ));
        let gpu = tput(&cfg(
            p,
            WorkloadProfile::deepcam(),
            Format::PluginGpu,
            12288,
            false,
            4,
        ));
        assert!(gpu >= cpu, "gpu {gpu} vs cpu {cpu}");
    }

    #[test]
    fn deepcam_baseline_does_not_improve_from_v100_to_a100() {
        // §IX-A: "the baseline performance does not improve when
        // migrating from the Cori-V100 to the faster Cori-A100 system" —
        // the input-side bottleneck (host workers, CPU-GPU transfers) is
        // essentially identical on both nodes. Checked per GPU on the
        // memory-resident small set where the effect is purest.
        let v = tput(&cfg(
            PlatformSpec::cori_v100(),
            WorkloadProfile::deepcam(),
            Format::Base,
            1536,
            true,
            4,
        ));
        let a = tput(&cfg(
            PlatformSpec::cori_a100(),
            WorkloadProfile::deepcam(),
            Format::Base,
            1536,
            true,
            4,
        ));
        let ratio = a / v;
        assert!((0.7..1.3).contains(&ratio), "{ratio}");
    }

    #[test]
    fn deepcam_plugin_leverages_a100_over_v100() {
        // §IX-A: "our plugin also leverages the increased capability of
        // the A100, resulting in a speedup of up to 2.2×".
        let v = tput(&cfg(
            PlatformSpec::cori_v100(),
            WorkloadProfile::deepcam(),
            Format::PluginGpu,
            1536,
            true,
            4,
        ));
        let a = tput(&cfg(
            PlatformSpec::cori_a100(),
            WorkloadProfile::deepcam(),
            Format::PluginGpu,
            1536,
            true,
            4,
        ));
        let ratio = a / v;
        assert!((1.5..2.5).contains(&ratio), "{ratio}");
    }

    #[test]
    fn breakdown_identifies_starved_baseline() {
        // Fig. 12: the CosmoFlow baseline under-utilizes the GPU (input
        // bound); the plugin flips it to compute bound.
        let p = PlatformSpec::cori_v100();
        let n = 128 * 8;
        let base = EpochModel::evaluate(&cfg(
            p.clone(),
            WorkloadProfile::cosmoflow(),
            Format::Base,
            n,
            true,
            4,
        ));
        let plug = EpochModel::evaluate(&cfg(
            p,
            WorkloadProfile::cosmoflow(),
            Format::PluginGpu,
            n,
            true,
            4,
        ));
        assert!(base.breakdown.input_bound());
        assert!(!plug.breakdown.input_bound());
        // Jitter shrinks when not starved.
        assert!(plug.breakdown.allreduce_s < base.breakdown.allreduce_s);
    }

    #[test]
    fn bottleneck_is_max_of_overlapped_stages() {
        let b = StageBreakdown {
            read_s: 3.0,
            host_s: 5.0,
            h2d_s: 1.0,
            gpu_decode_s: 0.5,
            step_s: 2.0,
            allreduce_s: 0.5,
        };
        assert_eq!(b.bottleneck_s(), 5.0);
        assert!(b.input_bound());
    }
}
