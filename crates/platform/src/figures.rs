//! Figure/table series generators.
//!
//! One function per paper figure; each returns structured rows so the
//! `figures` binary can print them and tests can assert their shape.

use crate::epoch::{EpochModel, ExperimentConfig, StageBreakdown};
use crate::spec::PlatformSpec;
use crate::workload::{Format, WorkloadProfile};

/// One throughput bar of Figs. 8, 10, 11.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Platform name.
    pub platform: &'static str,
    /// Dataset size label ("small"/"large").
    pub dataset: &'static str,
    /// Staged to NVMe?
    pub staged: bool,
    /// Local batch size.
    pub batch: usize,
    /// Pipeline variant.
    pub format: Format,
    /// Samples/s for the full node.
    pub node_throughput: f64,
    /// Storage tier serving reads in steady state.
    pub tier: &'static str,
}

/// One stage bar of Figs. 9, 12.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Platform name.
    pub platform: &'static str,
    /// Pipeline variant.
    pub format: Format,
    /// Per-sample stage times.
    pub breakdown: StageBreakdown,
}

fn eval(
    platform: &PlatformSpec,
    workload: &WorkloadProfile,
    format: Format,
    samples_per_node: u64,
    staged: bool,
    batch: usize,
) -> (f64, &'static str, StageBreakdown) {
    let r = EpochModel::evaluate(&ExperimentConfig {
        platform: platform.clone(),
        workload: workload.clone(),
        format,
        samples_per_node,
        staged,
        batch,
    });
    (r.node_throughput, r.tier.label(), r.breakdown)
}

/// Fig. 8: DeepCAM node throughput across platforms × dataset size ×
/// staging × batch × pipeline variant (no gzip bars, as in the paper).
pub fn fig8() -> Vec<ThroughputRow> {
    let w = WorkloadProfile::deepcam();
    let mut rows = Vec::new();
    for p in PlatformSpec::all() {
        for (dataset, samples) in [("small", 1536u64), ("large", 12288)] {
            for staged in [true, false] {
                for batch in [1usize, 2, 4, 8] {
                    for format in [Format::Base, Format::PluginCpu, Format::PluginGpu] {
                        let (t, tier, b) = eval(&p, &w, format, samples, staged, batch);
                        let _ = b;
                        rows.push(ThroughputRow {
                            platform: p.name,
                            dataset,
                            staged,
                            batch,
                            format,
                            node_throughput: t,
                            tier,
                        });
                    }
                }
            }
        }
    }
    rows
}

/// Fig. 9: DeepCAM stage breakdown on Cori V100/A100, small set, batch 4.
pub fn fig9() -> Vec<BreakdownRow> {
    let w = WorkloadProfile::deepcam();
    let mut rows = Vec::new();
    for p in [PlatformSpec::cori_v100(), PlatformSpec::cori_a100()] {
        for format in [Format::Base, Format::PluginCpu, Format::PluginGpu] {
            let (_, _, b) = eval(&p, &w, format, 1536, true, 4);
            rows.push(BreakdownRow {
                platform: p.name,
                format,
                breakdown: b,
            });
        }
    }
    rows
}

/// Fig. 10: CosmoFlow node throughput, small set (128 samples/GPU),
/// base vs gzip vs GPU plugin, batches 1–8.
pub fn fig10() -> Vec<ThroughputRow> {
    cosmo_throughput(128, "small")
}

/// Fig. 11: CosmoFlow node throughput, large set (2048 samples/GPU).
pub fn fig11() -> Vec<ThroughputRow> {
    cosmo_throughput(2048, "large")
}

fn cosmo_throughput(samples_per_gpu: u64, dataset: &'static str) -> Vec<ThroughputRow> {
    let w = WorkloadProfile::cosmoflow();
    let mut rows = Vec::new();
    for p in PlatformSpec::all() {
        let samples = samples_per_gpu * p.gpus_per_node as u64;
        for staged in [true, false] {
            for batch in [1usize, 2, 4, 8] {
                for format in [Format::Base, Format::Gzip, Format::PluginGpu] {
                    let (t, tier, _) = eval(&p, &w, format, samples, staged, batch);
                    rows.push(ThroughputRow {
                        platform: p.name,
                        dataset,
                        staged,
                        batch,
                        format,
                        node_throughput: t,
                        tier,
                    });
                }
            }
        }
    }
    rows
}

/// Fig. 12: CosmoFlow stage breakdown on Summit and Cori-V100, small
/// set, batch 4 (base, gzip, plugin).
pub fn fig12() -> Vec<BreakdownRow> {
    let w = WorkloadProfile::cosmoflow();
    let mut rows = Vec::new();
    for p in [PlatformSpec::summit(), PlatformSpec::cori_v100()] {
        let samples = 128 * p.gpus_per_node as u64;
        for format in [Format::Base, Format::Gzip, Format::PluginGpu] {
            let (_, _, b) = eval(&p, &w, format, samples, true, 4);
            rows.push(BreakdownRow {
                platform: p.name,
                format,
                breakdown: b,
            });
        }
    }
    rows
}

/// Table I rendered from the specs.
pub fn table1() -> String {
    let ps = PlatformSpec::all();
    let mut s = String::new();
    let row = |label: &str, f: &dyn Fn(&PlatformSpec) -> String| {
        let mut line = format!("{label:<26}");
        for p in &ps {
            line.push_str(&format!("{:>14}", f(p)));
        }
        line.push('\n');
        line
    };
    s.push_str(&row("System", &|p| p.name.to_string()));
    s.push_str(&row("GPUs per node", &|p| p.gpus_per_node.to_string()));
    s.push_str(&row("GPU", &|p| p.gpu.name.to_string()));
    s.push_str(&row("CPU freq (GHz)", &|p| {
        format!("{:.2}", p.cpu_freq_ghz)
    }));
    s.push_str(&row("Host memory (GB)", &|p| {
        format!("{:.0}", p.host_memory as f64 / 1e9)
    }));
    s.push_str(&row("GPU mem capacity (GB)", &|p| {
        format!("{:.0}", p.gpu.mem_capacity as f64 / 1e9)
    }));
    s.push_str(&row("GPU mem BW (TB/s)", &|p| {
        format!("{:.1}", p.gpu.mem_bw / 1e12)
    }));
    s.push_str(&row("SMs", &|p| p.gpu.sm_count.to_string()));
    s.push_str(&row("L2 (MB)", &|p| {
        format!("{:.0}", p.gpu.l2_bytes as f64 / 1e6)
    }));
    s.push_str(&row("FP32 TF/s", &|p| {
        format!("{:.1}", p.gpu.fp32_tflops / 1e12)
    }));
    s.push_str(&row("Tensor TF/s", &|p| {
        format!("{:.0}", p.gpu.tensor_tflops / 1e12)
    }));
    s.push_str(&row("NVMe capacity (TB)", &|p| {
        format!("{:.1}", p.nvme_capacity as f64 / 1e12)
    }));
    s.push_str(&row("NVMe read BW (GB/s)", &|p| {
        format!("{:.1}", p.nvme_read_bw / 1e9)
    }));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_has_full_grid() {
        let rows = fig8();
        // 3 platforms × 2 datasets × 2 staging × 4 batches × 3 formats.
        assert_eq!(rows.len(), 3 * 2 * 2 * 4 * 3);
        assert!(rows.iter().all(|r| r.node_throughput > 0.0));
    }

    #[test]
    fn fig10_and_11_have_full_grids() {
        assert_eq!(fig10().len(), 3 * 2 * 4 * 3);
        assert_eq!(fig11().len(), 3 * 2 * 4 * 3);
    }

    #[test]
    fn fig9_breakdowns_show_plugin_reducing_host_time() {
        let rows = fig9();
        let host = |fmt: Format, platform: &str| {
            rows.iter()
                .find(|r| r.format == fmt && r.platform == platform)
                .unwrap()
                .breakdown
                .host_s
        };
        for p in ["Cori-V100", "Cori-A100"] {
            assert!(host(Format::PluginGpu, p) < host(Format::Base, p) / 5.0);
        }
    }

    #[test]
    fn fig12_baseline_underutilizes_gpu() {
        for r in fig12() {
            match r.format {
                Format::Base | Format::Gzip => {
                    assert!(r.breakdown.input_bound(), "{:?} {}", r.format, r.platform)
                }
                Format::PluginGpu => {
                    assert!(!r.breakdown.input_bound(), "{}", r.platform)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn table1_mentions_all_platforms() {
        let t = table1();
        for name in ["Summit", "Cori-V100", "Cori-A100"] {
            assert!(t.contains(name));
        }
        assert!(t.contains("NVMe"));
    }

    #[test]
    fn fig11_contains_order_of_magnitude_speedup() {
        let rows = fig11();
        let mut best = 0.0f64;
        for p in ["Summit", "Cori-V100", "Cori-A100"] {
            for staged in [true, false] {
                for batch in [1usize, 2, 4, 8] {
                    let get = |f: Format| {
                        rows.iter()
                            .find(|r| {
                                r.platform == p
                                    && r.staged == staged
                                    && r.batch == batch
                                    && r.format == f
                            })
                            .unwrap()
                            .node_throughput
                    };
                    best = best.max(get(Format::PluginGpu) / get(Format::Base));
                }
            }
        }
        assert!(best >= 8.0, "best large-set speedup {best}");
    }
}
