//! HPC platform models and the epoch-level pipeline performance model.
//!
//! Figures 8–12 of the paper are **data-movement studies**: who wins and
//! where the crossovers fall is governed by the capacities and bandwidths
//! of Summit, Cori-V100 and Cori-A100 (Table I plus the pageable-PCIe
//! bandwidths measured in §IX-A). This crate encodes those constants and
//! an analytic steady-state pipeline model:
//!
//! * [`spec`] — per-node platform parameters with the three presets, and
//!   the size-dependent pageable host→device bandwidth curves;
//! * [`workload`] — per-sample costs for each workload × format (raw
//!   baseline, gzip, CPU plugin, GPU plugin), anchored to real encoder
//!   output sizes and to decode timings from the real codecs and the
//!   SIMT simulator;
//! * [`epoch`] — the steady-state epoch model: storage tier selection
//!   from dataset size vs memory/NVMe capacity, per-stage times, pipeline
//!   overlap (throughput = 1 / bottleneck stage), and the stage
//!   breakdowns behind Figs. 9 and 12;
//! * [`figures`] — one function per paper figure/table producing the
//!   exact series the `figures` binary prints.
//!
//! Absolute numbers are modeled; EXPERIMENTS.md reports them against the
//! paper's and the claims defended are the shapes (speedup factors,
//! orderings, staging/caching effects).

pub mod calibrate;
pub mod cpu;
pub mod epoch;
pub mod figures;
pub mod scaling;
pub mod spec;
pub mod workload;

pub use epoch::{EpochModel, ExperimentConfig, ExperimentResult, StageBreakdown, StorageTier};
pub use scaling::{scale, Interconnect, ScalingPoint};
pub use spec::{BandwidthCurve, PlatformSpec};
pub use workload::{Format, WorkloadProfile};
