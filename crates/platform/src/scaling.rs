//! Multi-node scaling extension.
//!
//! The paper's single-node results live inside multi-node MLPerf-HPC
//! training runs: "the number of samples assigned to a node in HPC
//! environments depends on the node count and the number of samples
//! used in training" (§IX-A). This module extends the epoch model across
//! node counts, capturing two effects the single-node figures imply:
//!
//! 1. **per-node dataset shrinkage** — with more nodes, each node's
//!    shard gets smaller and eventually fits a faster storage tier;
//!    encoded datasets cross that boundary at far fewer nodes than raw
//!    ones (the paper's caching mechanism, now as a scaling cliff);
//! 2. **allreduce growth** — a ring allreduce of the model gradients
//!    costs `2(N-1)/N · bytes / nic_bw + log₂N · latency` per step,
//!    amortized over the local batch, so input-bound baselines hide it
//!    while fast plugins expose it (Amdahl on the collective).

use crate::epoch::{EpochModel, ExperimentConfig};
use crate::spec::PlatformSpec;
use crate::workload::{Format, WorkloadProfile};

/// Interconnect parameters of a node (both evaluated systems use
/// multi-rail EDR InfiniBand; §VII).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Injection bandwidth per node in bytes/s.
    pub bw: f64,
    /// Per-hop latency in seconds.
    pub latency: f64,
}

impl Interconnect {
    /// Dual-rail / quad-rail EDR InfiniBand, ≈25 GB/s effective.
    pub const EDR: Interconnect = Interconnect {
        bw: 25e9,
        latency: 5e-6,
    };

    /// Ring-allreduce wall time for `bytes` of gradients over `nodes`.
    pub fn ring_allreduce_s(&self, bytes: f64, nodes: u32) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let n = nodes as f64;
        2.0 * (n - 1.0) / n * bytes / self.bw + (n.log2().ceil()) * self.latency
    }
}

/// Gradient sizes of the two models (FP32 gradients; CosmoFlow ≈2.1 M
/// parameters, DeepCAM's DeepLabv3+ ≈45 M).
pub fn model_gradient_bytes(workload: &WorkloadProfile) -> f64 {
    match workload.name {
        "CosmoFlow" => 2.1e6 * 4.0,
        _ => 45e6 * 4.0,
    }
}

/// One point of a scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Nodes in the job.
    pub nodes: u32,
    /// Samples assigned per node in this configuration.
    pub samples_per_node: u64,
    /// Samples/s of one node (includes the allreduce term).
    pub node_throughput: f64,
    /// Aggregate samples/s of the job.
    pub global_throughput: f64,
    /// Parallel efficiency vs. a single node of the same sweep.
    pub efficiency: f64,
    /// Steady-state storage tier for the per-node shard.
    pub tier: &'static str,
}

/// Sweeps node counts for a fixed global dataset.
#[allow(clippy::too_many_arguments)]
pub fn scale(
    platform: &PlatformSpec,
    workload: &WorkloadProfile,
    format: Format,
    total_samples: u64,
    staged: bool,
    batch: usize,
    interconnect: Interconnect,
    node_counts: &[u32],
) -> Vec<ScalingPoint> {
    let grad_bytes = model_gradient_bytes(workload);
    let mut points = Vec::with_capacity(node_counts.len());
    let mut single_node: Option<f64> = None;
    for &nodes in node_counts {
        let samples_per_node = total_samples.div_ceil(nodes as u64).max(1);
        let r = EpochModel::evaluate(&ExperimentConfig {
            platform: platform.clone(),
            workload: workload.clone(),
            format,
            samples_per_node,
            staged,
            batch,
        });
        // Add the multi-node collective on top of the single-node
        // breakdown: the device timeline gains the ring term per step,
        // amortized over the local batch.
        let mut b = r.breakdown;
        b.allreduce_s += interconnect.ring_allreduce_s(grad_bytes, nodes) / batch as f64;
        let per_sample = b.bottleneck_s();
        let node_throughput = 1.0 / per_sample * platform.gpus_per_node as f64;
        let global = node_throughput * nodes as f64;
        let base = *single_node.get_or_insert(node_throughput * nodes.min(1) as f64);
        points.push(ScalingPoint {
            nodes,
            samples_per_node,
            node_throughput,
            global_throughput: global,
            efficiency: global / (base * nodes as f64),
            tier: r.tier.label(),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODES: [u32; 5] = [1, 4, 16, 64, 256];

    fn sweep(format: Format) -> Vec<ScalingPoint> {
        scale(
            &PlatformSpec::cori_v100(),
            &WorkloadProfile::cosmoflow(),
            format,
            // Global dataset: 0.5 M samples (the paper's full CosmoFlow
            // set) — raw ≈ 16.8 TB, far beyond any node's memory at
            // small scale.
            512 * 1024,
            true,
            4,
            Interconnect::EDR,
            &NODES,
        )
    }

    #[test]
    fn ring_allreduce_model_behaves() {
        let ic = Interconnect::EDR;
        assert_eq!(ic.ring_allreduce_s(1e9, 1), 0.0);
        let t4 = ic.ring_allreduce_s(1e9, 4);
        let t64 = ic.ring_allreduce_s(1e9, 64);
        assert!(t64 > t4, "{t64} vs {t4}");
        // Bounded by 2 × bytes/bw plus latency.
        assert!(t64 < 2.0 * 1e9 / ic.bw + 1e-3);
    }

    #[test]
    fn shards_shrink_and_tier_improves_with_node_count() {
        let pts = sweep(Format::Base);
        assert!(pts
            .windows(2)
            .all(|w| w[1].samples_per_node <= w[0].samples_per_node));
        // At low node counts the raw shard streams from NVMe/FS; at high
        // counts it fits host memory.
        assert_ne!(pts.first().unwrap().tier, "host-mem");
        assert_eq!(pts.last().unwrap().tier, "host-mem");
    }

    #[test]
    fn encoded_data_reaches_memory_tier_at_fewer_nodes() {
        let base = sweep(Format::Base);
        let plug = sweep(Format::PluginGpu);
        let first_mem = |pts: &[ScalingPoint]| {
            pts.iter()
                .find(|p| p.tier == "host-mem")
                .map(|p| p.nodes)
                .unwrap_or(u32::MAX)
        };
        assert!(
            first_mem(&plug) < first_mem(&base),
            "plugin {} vs base {}",
            first_mem(&plug),
            first_mem(&base)
        );
    }

    #[test]
    fn plugin_outscales_baseline_globally() {
        let base = sweep(Format::Base);
        let plug = sweep(Format::PluginGpu);
        for (b, p) in base.iter().zip(&plug) {
            assert!(
                p.global_throughput >= b.global_throughput,
                "at {} nodes: {} vs {}",
                b.nodes,
                p.global_throughput,
                b.global_throughput
            );
        }
    }

    #[test]
    fn allreduce_erodes_efficiency_at_scale_for_the_fast_pipeline() {
        // Use a memory-resident dataset so no caching cliff interferes:
        // what remains is the collective's growth with node count.
        let pts = scale(
            &PlatformSpec::cori_v100(),
            &WorkloadProfile::cosmoflow(),
            Format::PluginGpu,
            1024,
            true,
            4,
            Interconnect::EDR,
            &NODES,
        );
        assert!(pts.iter().all(|p| p.tier == "host-mem"));
        for w in pts.windows(2) {
            assert!(
                w[1].efficiency <= w[0].efficiency + 1e-9,
                "{} -> {}",
                w[0].efficiency,
                w[1].efficiency
            );
        }
        assert!(pts.last().unwrap().efficiency < 1.0);
    }

    #[test]
    fn baseline_scales_superlinearly_across_the_caching_cliff() {
        // When the shard drops into host memory, per-node throughput
        // jumps: global scaling beats linear around the cliff.
        let pts = sweep(Format::Base);
        let linear_64 = pts[0].global_throughput * 64.0;
        let actual_64 = pts
            .iter()
            .find(|p| p.nodes == 64)
            .unwrap()
            .global_throughput;
        assert!(actual_64 > linear_64, "{actual_64} vs linear {linear_64}");
    }
}
