//! Platform specifications (Table I) and bandwidth curves (§IX-A).

use sciml_gpusim::GpuSpec;

const GB: f64 = 1e9;
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
const TB: u64 = 1_000_000_000_000;

/// Piecewise-linear bandwidth as a function of transfer size.
///
/// §IX-A: "For the range of transfer sizes of 4 to 64 MB … the bandwidth
/// range is 4-8 GB/s for the V100 node and 6-8 GB/s for the A100 node"
/// (pageable memory, which deep-learning frameworks use).
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthCurve {
    /// `(transfer_bytes, bytes_per_second)` points, sorted by size.
    pub points: Vec<(f64, f64)>,
}

impl BandwidthCurve {
    /// Builds a curve from `(MiB, GB/s)` pairs.
    pub fn from_mb_gbs(points: &[(f64, f64)]) -> Self {
        let points = points
            .iter()
            .map(|&(mb, gbs)| (mb * 1024.0 * 1024.0, gbs * GB))
            .collect();
        Self { points }
    }

    /// Bandwidth at a transfer size (linear interpolation, clamped).
    pub fn at(&self, transfer_bytes: f64) -> f64 {
        let p = &self.points;
        assert!(!p.is_empty(), "empty bandwidth curve");
        if transfer_bytes <= p[0].0 {
            return p[0].1;
        }
        for w in p.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if transfer_bytes <= x1 {
                let t = (transfer_bytes - x0) / (x1 - x0);
                return y0 + t * (y1 - y0);
            }
        }
        p.last().expect("non-empty").1
    }
}

/// One compute node of an evaluated system.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// System name as used in the paper.
    pub name: &'static str,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// GPU model parameters.
    pub gpu: GpuSpec,
    /// Host DRAM capacity in bytes.
    pub host_memory: u64,
    /// Host DRAM streaming bandwidth in bytes/s (for cached reads).
    pub host_mem_bw: f64,
    /// Node-local NVMe capacity in bytes.
    pub nvme_capacity: u64,
    /// NVMe read bandwidth in bytes/s (shared across the node's GPUs).
    pub nvme_read_bw: f64,
    /// Achievable per-node bandwidth from the shared parallel FS.
    pub shared_fs_bw: f64,
    /// Pageable host→device bandwidth vs transfer size.
    pub h2d: BandwidthCurve,
    /// Physical CPU cores per node (shared by all GPU processes).
    pub cpu_cores: u32,
    /// CPU clock in GHz (Table I) — scales host-side software rates.
    pub cpu_freq_ghz: f64,
}

impl PlatformSpec {
    /// OLCF Summit: 2×POWER9 + 6×V100, NVLink host links.
    pub fn summit() -> Self {
        Self {
            name: "Summit",
            gpus_per_node: 6,
            gpu: GpuSpec::V100,
            host_memory: 512 * GIB as u64,
            host_mem_bw: 135.0 * GB,
            nvme_capacity: 1600 * TB / 1000, // 1.6 TB
            nvme_read_bw: 5.5 * GIB,
            shared_fs_bw: 2.0 * GB,
            // NVLink CPU-GPU: ~3× PCIe3 pageable (§IX-B: "Summit … uses
            // NVLINK, which roughly provides 3× the bandwidth of the
            // PCIe 3.0").
            h2d: BandwidthCurve::from_mb_gbs(&[(4.0, 12.0), (16.0, 18.0), (64.0, 24.0)]),
            cpu_cores: 42,
            cpu_freq_ghz: 3.1,
        }
    }

    /// NERSC Cori-V100: 2×Xeon Gold 6148 + 8×V100, PCIe 3.0.
    pub fn cori_v100() -> Self {
        Self {
            name: "Cori-V100",
            gpus_per_node: 8,
            gpu: GpuSpec::V100,
            host_memory: 384 * GIB as u64,
            host_mem_bw: 120.0 * GB,
            nvme_capacity: TB, // 1.0 TB
            nvme_read_bw: 3.2 * GB,
            shared_fs_bw: 2.0 * GB,
            h2d: BandwidthCurve::from_mb_gbs(&[(4.0, 4.0), (16.0, 6.0), (64.0, 8.0)]),
            cpu_cores: 40,
            cpu_freq_ghz: 2.4,
        }
    }

    /// NERSC Cori-A100: 2×EPYC 7742 + 8×A100, PCIe 4.0.
    pub fn cori_a100() -> Self {
        Self {
            name: "Cori-A100",
            gpus_per_node: 8,
            gpu: GpuSpec::A100,
            host_memory: 1056 * GIB as u64,
            host_mem_bw: 300.0 * GB,
            nvme_capacity: 15_400 * TB / 1000, // 15.4 TB
            nvme_read_bw: 24.3 * GIB,
            shared_fs_bw: 2.0 * GB,
            // §IX-A: "6-8 GB/s for the A100 node" in the pageable range —
            // close to V100 despite PCIe4, which is why the baseline does
            // not improve from V100 to A100.
            h2d: BandwidthCurve::from_mb_gbs(&[(4.0, 6.0), (16.0, 7.0), (64.0, 8.0)]),
            cpu_cores: 128,
            cpu_freq_ghz: 2.25,
        }
    }

    /// All three evaluated platforms.
    pub fn all() -> Vec<PlatformSpec> {
        vec![Self::summit(), Self::cori_v100(), Self::cori_a100()]
    }

    /// CPU cores available to one GPU's process.
    pub fn cores_per_gpu(&self) -> f64 {
        self.cpu_cores as f64 / self.gpus_per_node as f64
    }

    /// Host software rate multiplier relative to the Cori-V100 reference
    /// core (clock-frequency ratio; per-workload stack efficiencies are
    /// applied by [`crate::workload::WorkloadProfile::host_efficiency`]).
    pub fn host_rate_factor(&self) -> f64 {
        self.cpu_freq_ghz / 2.4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_curve_interpolates_and_clamps() {
        let c = BandwidthCurve::from_mb_gbs(&[(4.0, 4.0), (64.0, 8.0)]);
        assert_eq!(c.at(1.0), 4.0 * GB);
        assert_eq!(c.at(200.0 * 1024.0 * 1024.0), 8.0 * GB);
        let mid = c.at(34.0 * 1024.0 * 1024.0);
        assert!(mid > 4.0 * GB && mid < 8.0 * GB);
    }

    #[test]
    fn presets_match_table_one() {
        let s = PlatformSpec::summit();
        let v = PlatformSpec::cori_v100();
        let a = PlatformSpec::cori_a100();
        assert_eq!(s.gpus_per_node, 6);
        assert_eq!(v.gpus_per_node, 8);
        assert_eq!(a.gpus_per_node, 8);
        assert_eq!(s.gpu.name, "V100");
        assert_eq!(a.gpu.name, "A100");
        assert_eq!(v.nvme_capacity, TB);
        assert!((v.nvme_read_bw - 3.2 * GB).abs() < 1e6);
        assert!(a.host_memory > s.host_memory);
        assert_eq!(s.cpu_freq_ghz, 3.1);
    }

    #[test]
    fn summit_h2d_is_roughly_3x_cori_v100() {
        let s = PlatformSpec::summit();
        let v = PlatformSpec::cori_v100();
        let size = 16.0 * 1024.0 * 1024.0;
        let ratio = s.h2d.at(size) / v.h2d.at(size);
        assert!((2.5..3.5).contains(&ratio), "{ratio}");
    }

    #[test]
    fn a100_and_v100_pageable_bandwidths_are_close() {
        // The §IX-A observation that explains baseline parity.
        let v = PlatformSpec::cori_v100();
        let a = PlatformSpec::cori_a100();
        for mb in [4.0, 16.0, 64.0] {
            let size = mb * 1024.0 * 1024.0;
            let ratio = a.h2d.at(size) / v.h2d.at(size);
            assert!((0.8..1.6).contains(&ratio), "{mb} MiB: {ratio}");
        }
    }

    #[test]
    fn cores_per_gpu() {
        assert_eq!(PlatformSpec::summit().cores_per_gpu(), 7.0);
        assert_eq!(PlatformSpec::cori_v100().cores_per_gpu(), 5.0);
        assert_eq!(PlatformSpec::cori_a100().cores_per_gpu(), 16.0);
    }

    #[test]
    fn host_rate_factor_tracks_clock() {
        assert!(PlatformSpec::summit().host_rate_factor() > 1.0);
        assert_eq!(PlatformSpec::cori_v100().host_rate_factor(), 1.0);
        assert!(PlatformSpec::cori_a100().host_rate_factor() < 1.0);
    }
}
