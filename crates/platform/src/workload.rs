//! Per-sample workload profiles: sizes and costs per data format.
//!
//! Sizes are anchored to the paper where it reports them (CosmoFlow:
//! encoded ≈ 4× smaller than raw, gzip ≈ 5× smaller — §V-B; DeepCAM
//! raw = 16×1152×768 FP32 — §IV) and to this repo's real encoders for
//! what the paper leaves implicit (the `figures -- ratios` command
//! re-measures them on the synthetic datasets). Host-side rates are
//! single-core rates on the Cori-V100 reference core; the epoch model
//! scales them by each platform's [`host_rate_factor`] and worker count.
//!
//! [`host_rate_factor`]: crate::spec::PlatformSpec::host_rate_factor

use sciml_gpusim::GpuSpec;

#[cfg(test)]
const MB: f64 = 1e6;

/// The four pipeline variants evaluated in Figs. 8, 10, 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// Uncompressed FP32 samples, host preprocessing.
    Base,
    /// gzip-compressed samples, host gunzip + host preprocessing.
    Gzip,
    /// Custom encoding, CPU decoder plugin (ships FP16 to the device).
    PluginCpu,
    /// Custom encoding, GPU decoder plugin (ships encoded bytes).
    PluginGpu,
}

impl Format {
    /// All variants in presentation order.
    pub fn all() -> [Format; 4] {
        [
            Format::Base,
            Format::Gzip,
            Format::PluginCpu,
            Format::PluginGpu,
        ]
    }

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Format::Base => "base",
            Format::Gzip => "gzip",
            Format::PluginCpu => "cpu-plugin",
            Format::PluginGpu => "gpu-plugin",
        }
    }
}

/// Per-sample sizes and costs of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name.
    pub name: &'static str,
    /// FP32 sample bytes (storage and H2D unit of the baseline).
    pub raw_bytes: f64,
    /// FP16 decoded tensor bytes (H2D unit of the CPU plugin).
    pub fp16_bytes: f64,
    /// Custom-encoded bytes (storage of the plugins, H2D of the GPU one).
    pub encoded_bytes: f64,
    /// gzip-compressed bytes.
    pub gzip_bytes: f64,
    /// Baseline host preprocessing, single-core seconds per sample.
    pub preproc_1core_s: f64,
    /// gunzip, single-core seconds per sample (added to preprocessing).
    pub inflate_1core_s: f64,
    /// CPU-plugin decode, single-core seconds per sample.
    pub cpu_decode_1core_s: f64,
    /// Plugin pass-through host cost (framing, queueing), single-core s.
    pub passthrough_1core_s: f64,
    /// GPU decode seconds on a V100 (from the SIMT simulator at full
    /// sample scale).
    pub gpu_decode_v100_s: f64,
    /// Training-step seconds per sample on a V100 at large batch.
    pub step_v100_s: f64,
    /// Per-batch step overhead: `step(batch) = step × (1 + c / batch)`.
    pub step_batch_overhead: f64,
    /// Allreduce jitter per sample (grows when the input pipeline starves
    /// the collective — the Fig. 9 fluctuation observation).
    pub allreduce_jitter_s: f64,
    /// Maximum host worker parallelism per GPU process. TensorFlow's
    /// `tf.data` pipeline scales across all available cores; the PyTorch
    /// reference DeepCAM pins `num_workers` per rank.
    pub max_workers: usize,
    /// Host software efficiency of this workload's stack on Summit
    /// relative to Cori (§IX-A: "the level of optimization for the
    /// software stack appears to be lower for Summit"; the TF/opence
    /// stack suffers more than the PyTorch one).
    pub summit_host_efficiency: f64,
}

impl WorkloadProfile {
    /// CosmoFlow: 128³ × 4-redshift voxel histograms, TensorFlow.
    pub fn cosmoflow() -> Self {
        let raw = 128f64.powi(3) * 4.0 * 4.0; // 33.55 MB
        Self {
            name: "CosmoFlow",
            raw_bytes: raw,
            fp16_bytes: raw / 2.0,
            encoded_bytes: raw / 4.0, // §V-B: "compression factor of roughly 4×"
            gzip_bytes: raw / 5.0,    // §IV: gzip "reduces the required storage space by 5×"
            // log1p over 8.4M voxels plus TFRecord parse: ≈160 MB/s/core.
            preproc_1core_s: 0.21,
            // DEFLATE inflate ≈800 MB/s of output.
            inflate_1core_s: 0.042,
            // Table-fused LUT gather ≈750 MB/s of FP16 output per core.
            cpu_decode_1core_s: 0.022,
            passthrough_1core_s: 0.002,
            // SIMT-sim LUT gather on the full sample (bandwidth bound).
            gpu_decode_v100_s: 60e-6,
            step_v100_s: 9e-3,
            step_batch_overhead: 0.35,
            allreduce_jitter_s: 1.5e-3,
            max_workers: 64,
            summit_host_efficiency: 0.33,
        }
    }

    /// DeepCAM: 16 × 1152×768 FP32 climate images, PyTorch.
    pub fn deepcam() -> Self {
        let raw = 16.0 * 1152.0 * 768.0 * 4.0; // 56.62 MB
        Self {
            name: "DeepCAM",
            raw_bytes: raw,
            fp16_bytes: raw / 2.0,
            encoded_bytes: raw / 3.5, // delta codec ≈1 B/value + headers
            gzip_bytes: raw / 2.0,    // float fields gzip poorly
            // HDF5 read + per-channel normalization in the PyTorch data
            // worker: ≈160 MB/s/core.
            preproc_1core_s: 0.35,
            inflate_1core_s: 0.10,
            // Differential decode: branchy per-segment walks, ≈190 MB/s
            // of raw-equivalent bytes per worker.
            cpu_decode_1core_s: 0.30,
            passthrough_1core_s: 0.002,
            // SIMT-sim hierarchical delta decode (segment chains
            // serialize): §IX-A "roughly 4% of the processing time".
            gpu_decode_v100_s: 2.0e-3,
            step_v100_s: 55e-3,
            step_batch_overhead: 0.5,
            allreduce_jitter_s: 8e-3,
            max_workers: 4,
            summit_host_efficiency: 0.75,
        }
    }

    /// Stored bytes per sample for a format (what the storage tier and
    /// its capacity see).
    pub fn stored_bytes(&self, format: Format) -> f64 {
        match format {
            Format::Base => self.raw_bytes,
            Format::Gzip => self.gzip_bytes,
            Format::PluginCpu | Format::PluginGpu => self.encoded_bytes,
        }
    }

    /// Host→device bytes per sample for a format.
    pub fn h2d_bytes(&self, format: Format) -> f64 {
        match format {
            // Baselines ship the FP32 tensor (AMP casts on device).
            Format::Base | Format::Gzip => self.raw_bytes,
            Format::PluginCpu => self.fp16_bytes,
            Format::PluginGpu => self.encoded_bytes,
        }
    }

    /// Host-side single-core seconds per sample for a format.
    pub fn host_1core_s(&self, format: Format) -> f64 {
        match format {
            Format::Base => self.preproc_1core_s,
            Format::Gzip => self.inflate_1core_s + self.preproc_1core_s,
            Format::PluginCpu => self.cpu_decode_1core_s,
            Format::PluginGpu => self.passthrough_1core_s,
        }
    }

    /// Training-step seconds per sample at a batch size on a GPU.
    pub fn step_s(&self, gpu: &GpuSpec, batch: usize) -> f64 {
        let scale = GpuSpec::V100.tensor_tflops / gpu.tensor_tflops;
        // Mixed-precision training does not scale perfectly with tensor
        // FLOPs; the paper observes ≈2.2× A100 over V100.
        let eff_scale = if gpu.name == "A100" { 1.0 / 2.2 } else { scale };
        self.step_v100_s * eff_scale * (1.0 + self.step_batch_overhead / batch as f64)
    }

    /// GPU decode seconds per sample for the GPU plugin.
    pub fn gpu_decode_s(&self, gpu: &GpuSpec) -> f64 {
        let v100_rate = GpuSpec::V100.warp_issue_rate();
        self.gpu_decode_v100_s * v100_rate / gpu.warp_issue_rate()
    }

    /// Sanity helper: compression ratio of a format vs raw FP32.
    pub fn ratio(&self, format: Format) -> f64 {
        self.raw_bytes / self.stored_bytes(format)
    }

    /// Host stack efficiency of this workload on the given platform.
    pub fn host_efficiency(&self, platform_name: &str) -> f64 {
        if platform_name == "Summit" {
            self.summit_host_efficiency
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmoflow_sizes_match_paper_ratios() {
        let w = WorkloadProfile::cosmoflow();
        assert!((w.raw_bytes - 33.554432 * MB).abs() < 1.0);
        assert!((w.ratio(Format::PluginGpu) - 4.0).abs() < 1e-9);
        assert!((w.ratio(Format::Gzip) - 5.0).abs() < 1e-9);
        // §IV: "gzipped files are roughly 75% the size of our encoded
        // samples".
        assert!((w.gzip_bytes / w.encoded_bytes - 0.8).abs() < 0.1);
    }

    #[test]
    fn deepcam_sizes() {
        let w = WorkloadProfile::deepcam();
        assert!((w.raw_bytes - 56.623104 * MB).abs() < 1.0);
        assert!(w.ratio(Format::PluginCpu) > 3.0);
    }

    #[test]
    fn h2d_bytes_per_format() {
        let w = WorkloadProfile::cosmoflow();
        assert_eq!(w.h2d_bytes(Format::Base), w.raw_bytes);
        assert_eq!(w.h2d_bytes(Format::Gzip), w.raw_bytes);
        assert_eq!(w.h2d_bytes(Format::PluginCpu), w.fp16_bytes);
        assert_eq!(w.h2d_bytes(Format::PluginGpu), w.encoded_bytes);
        // The GPU plugin moves the fewest bytes across the bus.
        assert!(w.h2d_bytes(Format::PluginGpu) < w.h2d_bytes(Format::PluginCpu));
    }

    #[test]
    fn gzip_costs_more_host_time_than_base() {
        for w in [WorkloadProfile::cosmoflow(), WorkloadProfile::deepcam()] {
            assert!(w.host_1core_s(Format::Gzip) > w.host_1core_s(Format::Base));
            assert!(w.host_1core_s(Format::PluginCpu) < w.host_1core_s(Format::Base));
            assert!(w.host_1core_s(Format::PluginGpu) < w.host_1core_s(Format::PluginCpu));
        }
    }

    #[test]
    fn step_time_shrinks_with_batch_and_on_a100() {
        let w = WorkloadProfile::deepcam();
        let v = GpuSpec::V100;
        let a = GpuSpec::A100;
        assert!(w.step_s(&v, 8) < w.step_s(&v, 1));
        let ratio = w.step_s(&v, 4) / w.step_s(&a, 4);
        assert!((ratio - 2.2).abs() < 1e-6);
    }

    #[test]
    fn gpu_decode_is_tiny_fraction_of_step() {
        // §IX-B "<1%" for CosmoFlow, §IX-A "roughly 4%" for DeepCAM.
        let c = WorkloadProfile::cosmoflow();
        let d = WorkloadProfile::deepcam();
        let v = GpuSpec::V100;
        assert!(c.gpu_decode_s(&v) / c.step_s(&v, 4) < 0.01);
        let frac = d.gpu_decode_s(&v) / d.step_s(&v, 4);
        assert!((0.01..0.08).contains(&frac), "{frac}");
    }

    #[test]
    fn summit_efficiency_applies_only_to_summit() {
        let c = WorkloadProfile::cosmoflow();
        assert_eq!(c.host_efficiency("Summit"), 0.33);
        assert_eq!(c.host_efficiency("Cori-V100"), 1.0);
        let d = WorkloadProfile::deepcam();
        assert!(d.host_efficiency("Summit") > c.host_efficiency("Summit"));
    }
}
