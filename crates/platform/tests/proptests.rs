//! Property tests for the performance model: physical monotonicities
//! that must hold over the whole configuration space.

use proptest::prelude::*;
use sciml_platform::{
    EpochModel, ExperimentConfig, Format, Interconnect, PlatformSpec, WorkloadProfile,
};

fn platforms() -> impl Strategy<Value = PlatformSpec> {
    prop_oneof![
        Just(PlatformSpec::summit()),
        Just(PlatformSpec::cori_v100()),
        Just(PlatformSpec::cori_a100()),
    ]
}

fn workloads() -> impl Strategy<Value = WorkloadProfile> {
    prop_oneof![
        Just(WorkloadProfile::cosmoflow()),
        Just(WorkloadProfile::deepcam()),
    ]
}

fn formats() -> impl Strategy<Value = Format> {
    prop_oneof![
        Just(Format::Base),
        Just(Format::Gzip),
        Just(Format::PluginCpu),
        Just(Format::PluginGpu),
    ]
}

fn eval(
    p: &PlatformSpec,
    w: &WorkloadProfile,
    f: Format,
    samples: u64,
    staged: bool,
    batch: usize,
) -> f64 {
    EpochModel::evaluate(&ExperimentConfig {
        platform: p.clone(),
        workload: w.clone(),
        format: f,
        samples_per_node: samples,
        staged,
        batch,
    })
    .node_throughput
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Throughput is always finite and positive.
    #[test]
    fn throughput_is_finite_positive(
        p in platforms(),
        w in workloads(),
        f in formats(),
        samples in 1u64..1_000_000,
        staged in any::<bool>(),
        batch in 1usize..16,
    ) {
        let t = eval(&p, &w, f, samples, staged, batch);
        prop_assert!(t.is_finite() && t > 0.0);
    }

    /// Staging never hurts: NVMe is only used when it beats the tier the
    /// unstaged run would fall to.
    #[test]
    fn staging_never_hurts(
        p in platforms(),
        w in workloads(),
        f in formats(),
        samples in 1u64..1_000_000,
        batch in 1usize..16,
    ) {
        let staged = eval(&p, &w, f, samples, true, batch);
        let unstaged = eval(&p, &w, f, samples, false, batch);
        prop_assert!(staged >= unstaged * 0.999, "{staged} vs {unstaged}");
    }

    /// A smaller dataset never loses throughput (it can only move into a
    /// faster tier).
    #[test]
    fn smaller_dataset_never_slower(
        p in platforms(),
        w in workloads(),
        f in formats(),
        samples in 2u64..1_000_000,
        staged in any::<bool>(),
        batch in 1usize..16,
    ) {
        let small = eval(&p, &w, f, samples / 2, staged, batch);
        let large = eval(&p, &w, f, samples, staged, batch);
        prop_assert!(small >= large * 0.999, "{small} vs {large}");
    }

    /// The GPU plugin never loses to the gzip path when both read from
    /// the same storage tier (it moves fewer bytes and does
    /// asymptotically less host work). The one legitimate exception the
    /// model captures: gzip's slightly smaller files can squeeze into a
    /// memory tier the custom encoding just misses (§V-B: gzip is ≈75 %
    /// of the encoded size), so the comparison is tier-conditional.
    #[test]
    fn gpu_plugin_never_loses_to_gzip_on_equal_tier(
        p in platforms(),
        w in workloads(),
        samples in 1u64..1_000_000,
        staged in any::<bool>(),
        batch in 1usize..16,
    ) {
        let run = |f: Format| {
            EpochModel::evaluate(&ExperimentConfig {
                platform: p.clone(),
                workload: w.clone(),
                format: f,
                samples_per_node: samples,
                staged,
                batch,
            })
        };
        let plugin = run(Format::PluginGpu);
        let gzip = run(Format::Gzip);
        // Memory-resident regime (all of the paper's plugin wins): the
        // plugin must dominate. In purely read-bound regimes the smaller
        // gzip files can legitimately stream faster — a trade-off the
        // paper sidesteps because its encoded datasets always reach a
        // cached tier.
        if plugin.tier == sciml_platform::StorageTier::HostMemory
            && gzip.tier == sciml_platform::StorageTier::HostMemory
        {
            prop_assert!(
                plugin.node_throughput >= gzip.node_throughput * 0.999,
                "{} vs {}",
                plugin.node_throughput,
                gzip.node_throughput
            );
        }
    }

    /// Ring allreduce time is monotone in node count and in bytes.
    #[test]
    fn allreduce_monotone(bytes in 1e3f64..1e10, n1 in 2u32..512, n2 in 2u32..512) {
        let ic = Interconnect::EDR;
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(ic.ring_allreduce_s(bytes, lo) <= ic.ring_allreduce_s(bytes, hi) + 1e-12);
        prop_assert!(ic.ring_allreduce_s(bytes, lo) <= ic.ring_allreduce_s(bytes * 2.0, lo));
    }

    /// Breakdown components are non-negative and the bottleneck is at
    /// least each device component.
    #[test]
    fn breakdown_is_physical(
        p in platforms(),
        w in workloads(),
        f in formats(),
        samples in 1u64..1_000_000,
        staged in any::<bool>(),
        batch in 1usize..16,
    ) {
        let r = EpochModel::evaluate(&ExperimentConfig {
            platform: p,
            workload: w,
            format: f,
            samples_per_node: samples,
            staged,
            batch,
        });
        let b = r.breakdown;
        for v in [b.read_s, b.host_s, b.h2d_s, b.gpu_decode_s, b.step_s, b.allreduce_s] {
            prop_assert!(v >= 0.0 && v.is_finite());
        }
        prop_assert!(b.bottleneck_s() >= b.step_s);
        prop_assert!(b.bottleneck_s() >= b.read_s.max(b.host_s).max(b.h2d_s));
    }
}
