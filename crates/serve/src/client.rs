//! Remote dataset client: a [`SampleSource`] backed by a dataset
//! server, so a training pipeline consumes network-served samples
//! through the exact same trait as local files.
//!
//! Connections are pooled per source (reader threads check one out,
//! use it, and return it), every socket carries read/write timeouts,
//! and transient failures — dropped connections, timeouts, `Busy`
//! rejections — are retried with exponential backoff up to a bounded
//! attempt budget before surfacing as
//! [`PipelineError::Remote`]/[`PipelineError::Timeout`].

use crate::protocol::{
    read_message, write_message, DatasetEntry, ErrorCode, Message, ProtocolError, StatsSnapshot,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use parking_lot::Mutex;
use sciml_obs::{Counter, MetricsRegistry, TraceContext};
use sciml_pipeline::{PipelineError, SampleSource};
use sciml_store::ShardPlan;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Socket read timeout per response.
    pub read_timeout: Duration,
    /// Socket write timeout per request.
    pub write_timeout: Duration,
    /// Connect timeout is approximated by the OS default; failed
    /// connects consume retry attempts like any other failure.
    /// Total attempts per operation (1 initial + retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry.
    pub initial_backoff: Duration,
    /// Idle pooled connections kept per source.
    pub pool_size: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_attempts: 4,
            initial_backoff: Duration::from_millis(20),
            pool_size: 8,
        }
    }
}

/// One pooled, version-negotiated connection.
struct Conn {
    stream: TcpStream,
    /// Version both ends agreed to speak.
    negotiated: u16,
}

impl Conn {
    /// Opens a connection at the newest protocol version, walking the
    /// offer down one version at a time whenever the server rejects it
    /// with `VersionMismatch` — so a new client keeps working against
    /// any older server (it just loses the newer-version features, e.g.
    /// latency histograms below v2 or trace propagation below v5).
    /// Servers that ack `min(offered, theirs)` settle in one dial; only
    /// strict single-version peers make the ladder descend.
    fn open(addr: &str, cfg: &ClientConfig) -> Result<Self, PipelineError> {
        let mut version = PROTOCOL_VERSION;
        loop {
            match Self::open_at(addr, cfg, version) {
                Err(e) if version > MIN_PROTOCOL_VERSION && is_version_mismatch(&e) => {
                    version -= 1;
                }
                other => return other,
            }
        }
    }

    fn open_at(addr: &str, cfg: &ClientConfig, version: u16) -> Result<Self, PipelineError> {
        let stream = TcpStream::connect(addr).map_err(io_to_pipeline)?;
        stream
            .set_read_timeout(Some(cfg.read_timeout))
            .map_err(io_to_pipeline)?;
        stream
            .set_write_timeout(Some(cfg.write_timeout))
            .map_err(io_to_pipeline)?;
        let _ = stream.set_nodelay(true);
        let mut conn = Self {
            stream,
            negotiated: version,
        };
        conn.send(&Message::Hello { version })?;
        match conn.recv()? {
            Message::HelloAck { version } => {
                conn.negotiated = version;
                Ok(conn)
            }
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected_reply(&other)),
        }
    }

    fn send(&mut self, msg: &Message) -> Result<(), PipelineError> {
        write_message(&mut self.stream, msg).map_err(protocol_to_pipeline)
    }

    fn recv(&mut self) -> Result<Message, PipelineError> {
        read_message(&mut self.stream).map_err(protocol_to_pipeline)
    }

    /// One request/response exchange. On a v5+ connection, a request
    /// issued under an active trace context is wrapped in
    /// [`Message::Traced`] so the server's child spans join the
    /// caller's trace; on older connections the request goes out
    /// unwrapped — byte-identical to an untraced client — and the
    /// trace simply ends at the client span.
    fn call(&mut self, msg: &Message) -> Result<Message, PipelineError> {
        if self.negotiated >= 5 {
            if let Some(ctx) = TraceContext::current() {
                self.send(&Message::Traced {
                    trace_id: ctx.trace_id,
                    parent_span: ctx.span_id,
                    inner: Box::new(msg.clone()),
                })?;
                return self.recv();
            }
        }
        self.send(msg)?;
        self.recv()
    }
}

fn io_to_pipeline(e: io::Error) -> PipelineError {
    match e.kind() {
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
            PipelineError::Timeout("socket operation")
        }
        _ => PipelineError::Remote(Box::new(e)),
    }
}

fn protocol_to_pipeline(e: ProtocolError) -> PipelineError {
    match e {
        ProtocolError::Io(io_err) => io_to_pipeline(io_err),
        other => PipelineError::Remote(Box::new(other)),
    }
}

fn server_error(code: ErrorCode, detail: String) -> PipelineError {
    PipelineError::Remote(format!("server error ({code:?}): {detail}").into())
}

fn unexpected_reply(msg: &Message) -> PipelineError {
    PipelineError::Remote(format!("unexpected server reply: {msg:?}").into())
}

/// Did the server reject our protocol version offer?
fn is_version_mismatch(e: &PipelineError) -> bool {
    matches!(e, PipelineError::Remote(inner)
        if inner.to_string().contains("VersionMismatch"))
}

/// Is this failure worth a retry on a fresh connection?
fn is_transient(e: &PipelineError) -> bool {
    match e {
        PipelineError::Timeout(_) => true,
        PipelineError::Remote(inner) => {
            let text = inner.to_string();
            // Busy rejections clear once in-flight connections finish;
            // wire-level failures may be a dropped/poisoned connection.
            text.contains("Busy") || !text.starts_with("server error")
        }
        _ => false,
    }
}

/// A [`SampleSource`] served over the wire.
pub struct RemoteSource {
    addr: String,
    name: String,
    len: usize,
    cfg: ClientConfig,
    pool: Mutex<Vec<Conn>>,
    read: AtomicU64,
    registry: Arc<MetricsRegistry>,
    /// Transient-failure retries (`client.retries`).
    retry_count: Arc<Counter>,
    /// Operations that hit a socket timeout (`client.timeouts`).
    timeout_count: Arc<Counter>,
    /// `Busy` admission rejections observed (`client.busy_rejections`).
    busy_count: Arc<Counter>,
}

impl RemoteSource {
    /// Connects to `addr`, validates that `dataset` exists, and caches
    /// its length.
    pub fn connect(
        addr: impl Into<String>,
        dataset: impl Into<String>,
    ) -> Result<Self, PipelineError> {
        Self::connect_with(addr, dataset, ClientConfig::default())
    }

    /// [`RemoteSource::connect`] with explicit tuning.
    pub fn connect_with(
        addr: impl Into<String>,
        dataset: impl Into<String>,
        cfg: ClientConfig,
    ) -> Result<Self, PipelineError> {
        Self::connect_with_registry(addr, dataset, cfg, MetricsRegistry::new())
    }

    /// [`RemoteSource::connect_with`], registering the client's
    /// `client.*` counters in `registry` so they share a snapshot with
    /// the rest of the process.
    pub fn connect_with_registry(
        addr: impl Into<String>,
        dataset: impl Into<String>,
        cfg: ClientConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self, PipelineError> {
        let mut source = Self {
            addr: addr.into(),
            name: dataset.into(),
            len: 0,
            cfg,
            pool: Mutex::new(Vec::new()),
            read: AtomicU64::new(0),
            retry_count: registry.counter("client.retries"),
            timeout_count: registry.counter("client.timeouts"),
            busy_count: registry.counter("client.busy_rejections"),
            registry,
        };
        let reply = source.call(&Message::Manifest {
            name: source.name.clone(),
        })?;
        match reply {
            Message::ManifestReply { len } => {
                source.len = len as usize;
                Ok(source)
            }
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Dataset name this source fetches from.
    pub fn dataset(&self) -> &str {
        &self.name
    }

    /// Retries performed so far (transient-failure recoveries).
    pub fn retries(&self) -> u64 {
        self.retry_count.get()
    }

    /// The registry holding this client's `client.*` counters.
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Lists all datasets registered on the server.
    pub fn list(&self) -> Result<Vec<DatasetEntry>, PipelineError> {
        match self.call(&Message::ListDatasets)? {
            Message::DatasetList(entries) => Ok(entries),
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Fetches this dataset's shard partitioning for staging (v3+).
    ///
    /// A store-backed dataset returns its real on-disk shard
    /// boundaries; any other dataset gets a plan synthesized from
    /// `per_shard` samples per shard (0 = server's choice). Feed the
    /// result to a `sciml_store::Stager` so whole shards are fetched
    /// in server-aligned ranges. A v4 server's reply carries each
    /// shard's payload encoding; a v3 reply decodes with
    /// `EncodingChoice::Auto`, so the stager trial-selects locally.
    pub fn shard_manifest(&self, per_shard: u64) -> Result<Vec<ShardPlan>, PipelineError> {
        match self.call(&Message::ShardManifest {
            name: self.name.clone(),
            per_shard,
        })? {
            Message::ShardManifestReply(plans) | Message::ShardManifestReplyV2(plans) => Ok(plans),
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Fetches the cluster placement for this dataset (v6+): the node
    /// list and each shard's replica set, primary first. A server not
    /// running in cluster mode answers with a single-node plan naming
    /// itself, so callers can treat every server uniformly. Feed the
    /// result to a [`crate::cluster::ClusterSource`] for shard-routed
    /// fetches with replica failover.
    pub fn cluster_topology(&self) -> Result<sciml_store::ClusterPlan, PipelineError> {
        match self.call(&Message::ClusterManifest {
            name: self.name.clone(),
        })? {
            Message::ClusterManifestReply(plan) => Ok(plan),
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Fetches the server-side stats snapshot. A v2+ server includes
    /// the request-latency histogram; a v1 server's snapshot has an
    /// empty `latency` (callers fall back to the `request_ns` mean). A
    /// v5 server additionally fills the per-encoding decode counters.
    pub fn server_stats(&self) -> Result<StatsSnapshot, PipelineError> {
        match self.call(&Message::Stats)? {
            Message::StatsReply(s) | Message::StatsReplyV2(s) | Message::StatsReplyV3(s) => Ok(s),
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Asks the server to shut down; returns its final stats.
    pub fn shutdown_server(&self) -> Result<StatsSnapshot, PipelineError> {
        match self.call(&Message::Shutdown)? {
            Message::StatsReply(s) | Message::StatsReplyV2(s) | Message::StatsReplyV3(s) => Ok(s),
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Shuts down the server at `addr` without binding to any dataset
    /// (connecting via [`RemoteSource::connect`] would fail when the
    /// dataset name is unknown, which a shutdown caller may not know).
    pub fn shutdown_at(addr: &str) -> Result<StatsSnapshot, PipelineError> {
        let mut conn = Conn::open(addr, &ClientConfig::default())?;
        match conn.call(&Message::Shutdown)? {
            Message::StatsReply(s) | Message::StatsReplyV2(s) | Message::StatsReplyV3(s) => Ok(s),
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Fetches a batch of samples in one round trip, in request order.
    pub fn fetch_batch(&self, indices: &[u64]) -> Result<Vec<Vec<u8>>, PipelineError> {
        let request = Message::FetchSamples {
            name: self.name.clone(),
            indices: indices.to_vec(),
        };
        match self.call(&request)? {
            Message::Samples(payloads) => {
                if payloads.len() != indices.len() {
                    return Err(PipelineError::Remote(
                        format!(
                            "server returned {} payloads for {} indices",
                            payloads.len(),
                            indices.len()
                        )
                        .into(),
                    ));
                }
                let bytes: u64 = payloads.iter().map(|p| p.len() as u64).sum();
                self.read.fetch_add(bytes, Ordering::Relaxed);
                Ok(payloads)
            }
            Message::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// Checks a connection out of the pool, or dials a new one.
    fn checkout(&self) -> Result<Conn, PipelineError> {
        if let Some(conn) = self.pool.lock().pop() {
            return Ok(conn);
        }
        Conn::open(&self.addr, &self.cfg)
    }

    /// Returns a healthy connection to the pool.
    fn checkin(&self, conn: Conn) {
        let mut pool = self.pool.lock();
        if pool.len() < self.cfg.pool_size {
            pool.push(conn);
        }
    }

    /// Runs one request/response with retry-with-backoff. A connection
    /// that saw any failure is discarded, never pooled again — the
    /// framing may be desynchronized.
    fn call(&self, msg: &Message) -> Result<Message, PipelineError> {
        let mut backoff = self.cfg.initial_backoff;
        let mut last_err = None;
        for attempt in 0..self.cfg.max_attempts.max(1) {
            if attempt > 0 {
                self.retry_count.inc();
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            match self.checkout() {
                Ok(mut conn) => match conn.call(msg) {
                    Ok(reply) => {
                        self.checkin(conn);
                        return Ok(reply);
                    }
                    Err(e) if is_transient(&e) => {
                        self.classify_failure(&e);
                        last_err = Some(e);
                    }
                    Err(e) => return Err(e),
                },
                Err(e) if is_transient(&e) => {
                    self.classify_failure(&e);
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(PipelineError::Remote("retry budget exhausted".into())))
    }

    /// Buckets a transient failure into its counter.
    fn classify_failure(&self, e: &PipelineError) {
        match e {
            PipelineError::Timeout(_) => self.timeout_count.inc(),
            PipelineError::Remote(inner) if inner.to_string().contains("Busy") => {
                self.busy_count.inc()
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for RemoteSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSource")
            .field("addr", &self.addr)
            .field("dataset", &self.name)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

impl SampleSource for RemoteSource {
    fn len(&self) -> usize {
        self.len
    }

    fn fetch(&self, idx: usize) -> sciml_pipeline::Result<Vec<u8>> {
        let mut batch = self.fetch_batch(&[idx as u64])?;
        batch
            .pop()
            .ok_or_else(|| PipelineError::Remote("server returned an empty batch".into()))
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeBuilder;
    use sciml_pipeline::source::VecSource;
    use std::sync::Arc;

    fn spawn_server() -> crate::server::ServerHandle {
        ServeBuilder::new()
            .dataset(
                "demo",
                Arc::new(VecSource::new((0..6u8).map(|i| vec![i; 32]).collect())),
            )
            .bind("127.0.0.1:0")
            .unwrap()
    }

    #[test]
    fn connects_and_fetches() {
        let server = spawn_server();
        let src = RemoteSource::connect(server.local_addr().to_string(), "demo").unwrap();
        assert_eq!(src.len(), 6);
        assert_eq!(src.fetch(4).unwrap(), vec![4u8; 32]);
        assert_eq!(src.bytes_read(), 32);
        let batch = src.fetch_batch(&[0, 5]).unwrap();
        assert_eq!(batch, vec![vec![0u8; 32], vec![5u8; 32]]);
        server.shutdown();
    }

    #[test]
    fn unknown_dataset_fails_fast() {
        let server = spawn_server();
        let err = RemoteSource::connect(server.local_addr().to_string(), "missing")
            .expect_err("must fail");
        assert!(matches!(err, PipelineError::Remote(_)));
        assert!(err.to_string().contains("missing"));
        server.shutdown();
    }

    #[test]
    fn out_of_range_fetch_is_typed_not_panic() {
        let server = spawn_server();
        let src = RemoteSource::connect(server.local_addr().to_string(), "demo").unwrap();
        let err = src.fetch(99).expect_err("out of range");
        assert!(matches!(err, PipelineError::Remote(_)));
        server.shutdown();
    }

    #[test]
    fn shutdown_at_needs_no_dataset_name() {
        let server = spawn_server();
        let stats = RemoteSource::shutdown_at(&server.local_addr().to_string()).expect("shutdown");
        assert_eq!(stats.samples_served, 0);
        server.join();
    }

    /// A minimal server that only speaks protocol v1: rejects any other
    /// Hello with `VersionMismatch`, then answers one Stats request.
    /// The descending ladder dials once per version, so the accept loop
    /// runs until the v1 offer finally lands.
    fn spawn_strict_v1_server() -> (String, std::thread::JoinHandle<()>) {
        use crate::protocol::{read_message, write_message};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            // One rejected connection per version above v1, then the
            // accepted v1 dial.
            for _ in 0..PROTOCOL_VERSION {
                let (mut stream, _) = listener.accept().unwrap();
                match read_message(&mut stream).unwrap() {
                    Message::Hello { version: 1 } => {
                        write_message(&mut stream, &Message::HelloAck { version: 1 }).unwrap();
                        if let Ok(Message::Stats) = read_message(&mut stream) {
                            write_message(
                                &mut stream,
                                &Message::StatsReply(StatsSnapshot {
                                    requests: 7,
                                    ..StatsSnapshot::default()
                                }),
                            )
                            .unwrap();
                        }
                        return;
                    }
                    Message::Hello { .. } => {
                        write_message(
                            &mut stream,
                            &Message::Error {
                                code: ErrorCode::VersionMismatch,
                                detail: "only v1 spoken here".into(),
                            },
                        )
                        .unwrap();
                    }
                    other => panic!("expected Hello, got {other:?}"),
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn falls_back_to_v1_against_old_server() {
        let (addr, handle) = spawn_strict_v1_server();
        let mut conn = Conn::open(&addr, &ClientConfig::default()).expect("v1 fallback");
        assert_eq!(conn.negotiated, 1);
        let reply = conn.call(&Message::Stats).unwrap();
        match reply {
            Message::StatsReply(s) => {
                assert_eq!(s.requests, 7);
                assert!(s.latency.is_empty(), "v1 reply carries no histogram");
            }
            other => panic!("expected v1 StatsReply, got {other:?}"),
        }
        handle.join().unwrap();
    }

    /// A server pinned at protocol v4: acks `min(offered, 4)` like a
    /// real pre-v5 build, then relays one raw request frame back for
    /// byte-level inspection before answering it.
    fn spawn_strict_v4_server(
        frame_tx: std::sync::mpsc::Sender<Vec<u8>>,
    ) -> (String, std::thread::JoinHandle<()>) {
        use crate::protocol::{read_message, write_message};
        use std::io::Read;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            match read_message(&mut stream).unwrap() {
                Message::Hello { version } => {
                    write_message(
                        &mut stream,
                        &Message::HelloAck {
                            version: version.min(4),
                        },
                    )
                    .unwrap();
                }
                other => panic!("expected Hello, got {other:?}"),
            }
            // Capture the next request frame raw: length prefix,
            // payload, CRC trailer.
            let mut len_buf = [0u8; 4];
            stream.read_exact(&mut len_buf).unwrap();
            let payload_len = u32::from_le_bytes(len_buf) as usize;
            let mut rest = vec![0u8; payload_len + 4];
            stream.read_exact(&mut rest).unwrap();
            let mut frame = len_buf.to_vec();
            frame.extend_from_slice(&rest);
            frame_tx.send(frame.clone()).unwrap();
            let request = crate::protocol::Message::from_payload(&frame[4..4 + payload_len])
                .expect("captured frame parses");
            assert!(matches!(request, Message::Stats), "expected Stats");
            write_message(
                &mut stream,
                &Message::StatsReplyV2(StatsSnapshot {
                    requests: 9,
                    ..StatsSnapshot::default()
                }),
            )
            .unwrap();
        });
        (addr, handle)
    }

    #[test]
    fn v5_client_degrades_to_untraced_requests_against_v4_server() {
        use crate::protocol::write_message;
        let (frame_tx, frame_rx) = std::sync::mpsc::channel();
        let (addr, handle) = spawn_strict_v4_server(frame_tx);
        let mut conn = Conn::open(&addr, &ClientConfig::default()).expect("v4 downgrade");
        assert_eq!(conn.negotiated, 4);
        // An active trace context would wrap the request on a v5
        // connection; on this v4 connection it must not.
        let _guard = TraceContext::install(TraceContext::root());
        let reply = conn.call(&Message::Stats).unwrap();
        match reply {
            Message::StatsReplyV2(s) => {
                assert_eq!(s.requests, 9);
                assert_eq!(s.decoded_raw, 0, "pre-v5 reply has no decode counters");
            }
            other => panic!("expected StatsReplyV2, got {other:?}"),
        }
        // The frame that crossed the wire is byte-identical to what an
        // untraced client writes: no Traced envelope, same tag, same
        // CRC.
        let sent = frame_rx.recv().unwrap();
        let mut untraced = Vec::new();
        write_message(&mut untraced, &Message::Stats).unwrap();
        assert_eq!(sent, untraced);
        handle.join().unwrap();
    }

    #[test]
    fn retry_counters_register_on_shared_registry() {
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = ClientConfig {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        let registry = MetricsRegistry::new();
        RemoteSource::connect_with_registry(addr, "demo", cfg, Arc::clone(&registry))
            .expect_err("nothing listening");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("client.retries"), 2);
    }

    #[test]
    fn connect_to_dead_server_errors_after_retries() {
        // Bind-then-drop guarantees a port with nothing listening.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let cfg = ClientConfig {
            max_attempts: 2,
            initial_backoff: Duration::from_millis(1),
            ..ClientConfig::default()
        };
        let err = RemoteSource::connect_with(addr, "demo", cfg).expect_err("nothing listening");
        assert!(matches!(
            err,
            PipelineError::Remote(_) | PipelineError::Timeout(_)
        ));
    }
}
