//! Cluster-aware client: shard-routed fetches with replica failover.
//!
//! A [`ClusterSource`] dials one seed node, asks it for the dataset's
//! [`ClusterPlan`] (node list + per-shard replica sets, computed by
//! consistent hashing on the server side), and then routes every fetch
//! to the shard's primary replica. When a replica fails — connect
//! refused, timeout, corrupt reply — the fetch falls over to the next
//! replica in the set and the `serve.client.failover` counter ticks, so
//! a dying node costs retries, not an epoch. Per-node connections are
//! pooled by the underlying [`RemoteSource`]s and re-dialed lazily
//! after a failure.

use crate::client::{ClientConfig, RemoteSource};
use parking_lot::Mutex;
use sciml_obs::{Counter, MetricsRegistry};
use sciml_pipeline::{PipelineError, SampleSource};
use sciml_store::ClusterPlan;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A [`SampleSource`] spanning a serve cluster: fetches are routed to
/// each shard's replicas with automatic failover.
pub struct ClusterSource {
    name: String,
    cfg: ClientConfig,
    plan: ClusterPlan,
    /// Lazily dialed per-node sources, indexed like `plan.nodes`. An
    /// entry is cleared when its node fails, so the next fetch that
    /// routes there re-dials instead of reusing poisoned pool state.
    nodes: Vec<Mutex<Option<Arc<RemoteSource>>>>,
    len: usize,
    read: AtomicU64,
    registry: Arc<MetricsRegistry>,
    /// Fetches that fell over to another replica after a failure
    /// (`serve.client.failover`).
    failover_count: Arc<Counter>,
    /// Rotate the starting replica per index instead of always reading
    /// from the primary, spreading read load across replicas.
    spread_reads: bool,
}

impl ClusterSource {
    /// Dials `seed` (any cluster member), fetches the cluster topology
    /// for `dataset`, and prepares routed access to every node.
    pub fn connect(
        seed: impl Into<String>,
        dataset: impl Into<String>,
    ) -> Result<Self, PipelineError> {
        Self::connect_with(seed, dataset, ClientConfig::default())
    }

    /// [`ClusterSource::connect`] with explicit client tuning (applied
    /// to the seed dial and every per-node connection).
    pub fn connect_with(
        seed: impl Into<String>,
        dataset: impl Into<String>,
        cfg: ClientConfig,
    ) -> Result<Self, PipelineError> {
        Self::connect_with_registry(seed, dataset, cfg, MetricsRegistry::new())
    }

    /// [`ClusterSource::connect_with`], registering the client's
    /// counters (including `serve.client.failover`) in `registry`.
    pub fn connect_with_registry(
        seed: impl Into<String>,
        dataset: impl Into<String>,
        cfg: ClientConfig,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self, PipelineError> {
        let seed = seed.into();
        let name = dataset.into();
        let seed_source = Arc::new(RemoteSource::connect_with_registry(
            seed.clone(),
            name.clone(),
            cfg.clone(),
            Arc::clone(&registry),
        )?);
        let plan = seed_source.cluster_topology()?;
        plan.validate()
            .map_err(|e| PipelineError::Remote(format!("invalid cluster plan: {e}").into()))?;
        // Shards partition [0, len): the dataset length is the highest
        // shard end (the seed's manifest length covers empty plans).
        let len = plan
            .shards
            .iter()
            .map(|a| a.plan.first + a.plan.count)
            .max()
            .unwrap_or(seed_source.len() as u64) as usize;
        let nodes: Vec<Mutex<Option<Arc<RemoteSource>>>> = plan
            .nodes
            .iter()
            .map(|addr| {
                // Reuse the seed connection for its own slot.
                Mutex::new((*addr == seed).then(|| Arc::clone(&seed_source)))
            })
            .collect();
        Ok(Self {
            name,
            cfg,
            plan,
            nodes,
            len,
            read: AtomicU64::new(0),
            failover_count: registry.counter("serve.client.failover"),
            registry,
            spread_reads: false,
        })
    }

    /// Rotates the starting replica per index (instead of always the
    /// primary), spreading read load across a shard's replica set.
    pub fn set_spread_reads(&mut self, on: bool) {
        self.spread_reads = on;
    }

    /// The placement this source routes by.
    pub fn plan(&self) -> &ClusterPlan {
        &self.plan
    }

    /// Fetches that fell over to another replica so far.
    pub fn failovers(&self) -> u64 {
        self.failover_count.get()
    }

    /// The registry holding this client's counters.
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// The node source for replica `r`, dialing it on first use (or
    /// after [`ClusterSource::invalidate`]).
    fn node_source(&self, r: u16) -> Result<Arc<RemoteSource>, PipelineError> {
        let Some(slot) = self.nodes.get(r as usize) else {
            return Err(PipelineError::Remote(
                format!("replica index {r} out of range").into(),
            ));
        };
        if let Some(src) = slot.lock().as_ref() {
            return Ok(Arc::clone(src));
        }
        // Dial outside the slot lock so a slow node cannot serialize
        // unrelated fetches; last dial wins the slot.
        let addr = &self.plan.nodes[r as usize];
        let src = Arc::new(RemoteSource::connect_with_registry(
            addr.clone(),
            self.name.clone(),
            self.cfg.clone(),
            Arc::clone(&self.registry),
        )?);
        *slot.lock() = Some(Arc::clone(&src));
        Ok(src)
    }

    /// Forgets the cached connection pool for node `r` after a failure.
    fn invalidate(&self, r: u16) {
        if let Some(slot) = self.nodes.get(r as usize) {
            *slot.lock() = None;
        }
    }

    /// Fetches `idx` from its shard's replicas, failing over in order.
    fn fetch_routed(&self, idx: u64) -> Result<Vec<u8>, PipelineError> {
        let Some(assignment) = self.plan.locate(idx) else {
            return Err(PipelineError::Remote(
                format!("no shard in the cluster plan covers index {idx}").into(),
            ));
        };
        let replicas = &assignment.replicas;
        let start = if self.spread_reads {
            idx as usize % replicas.len().max(1)
        } else {
            0
        };
        let mut last_err = None;
        for k in 0..replicas.len() {
            let r = replicas[(start + k) % replicas.len()];
            match self.fetch_from(r, idx) {
                Ok(payload) => {
                    self.read.fetch_add(payload.len() as u64, Ordering::Relaxed);
                    return Ok(payload);
                }
                Err(e) => {
                    self.invalidate(r);
                    if k + 1 < replicas.len() {
                        self.failover_count.inc();
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(PipelineError::Remote(
            "shard has an empty replica set".into(),
        )))
    }

    fn fetch_from(&self, r: u16, idx: u64) -> Result<Vec<u8>, PipelineError> {
        let src = self.node_source(r)?;
        let mut batch = src.fetch_batch(&[idx])?;
        batch
            .pop()
            .ok_or_else(|| PipelineError::Remote("server returned an empty batch".into()))
    }
}

impl std::fmt::Debug for ClusterSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSource")
            .field("dataset", &self.name)
            .field("nodes", &self.plan.nodes)
            .field("replication", &self.plan.replication)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

impl SampleSource for ClusterSource {
    fn len(&self) -> usize {
        self.len
    }

    fn fetch(&self, idx: usize) -> sciml_pipeline::Result<Vec<u8>> {
        self.fetch_routed(idx as u64)
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ClusterConfig, ServeBuilder, ServerHandle};
    use sciml_pipeline::source::VecSource;
    use std::net::TcpListener;

    /// Discovers `n` distinct free loopback ports by binding ephemeral
    /// listeners, then releases them for the servers to claim.
    fn reserve_addrs(n: usize) -> Vec<String> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().unwrap().to_string())
            .collect()
    }

    fn samples() -> Vec<Vec<u8>> {
        (0..32u8).map(|i| vec![i; 64]).collect()
    }

    fn spawn_cluster(addrs: &[String], replication: u16) -> Vec<ServerHandle> {
        addrs
            .iter()
            .map(|addr| {
                ServeBuilder::new()
                    .dataset("demo", Arc::new(VecSource::new(samples())))
                    .cluster(ClusterConfig {
                        nodes: addrs.to_vec(),
                        replication,
                    })
                    .bind(addr.clone())
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn routed_fetches_match_local_data() {
        let addrs = reserve_addrs(3);
        let servers = spawn_cluster(&addrs, 2);
        let src = ClusterSource::connect(addrs[0].clone(), "demo").unwrap();
        assert_eq!(src.len(), 32);
        assert_eq!(src.plan().nodes, addrs);
        for (i, expected) in samples().iter().enumerate() {
            assert_eq!(&src.fetch(i).unwrap(), expected, "sample {i}");
        }
        assert_eq!(src.failovers(), 0, "healthy cluster needs no failover");
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn dead_replica_fails_over_and_counts() {
        let addrs = reserve_addrs(2);
        let servers = spawn_cluster(&addrs, 2);
        let cfg = ClientConfig {
            max_attempts: 1,
            read_timeout: std::time::Duration::from_secs(2),
            ..ClientConfig::default()
        };
        let src = ClusterSource::connect_with(addrs[0].clone(), "demo", cfg).unwrap();
        // Kill the primary of the shard covering index 0; replication 2
        // guarantees the other node holds a replica of every shard.
        let primary = src.plan().locate(0).unwrap().replicas[0] as usize;
        let mut survivors = Vec::new();
        for (i, s) in servers.into_iter().enumerate() {
            if i == primary {
                s.shutdown();
            } else {
                survivors.push(s);
            }
        }
        for (i, expected) in samples().iter().enumerate() {
            assert_eq!(&src.fetch(i).unwrap(), expected, "sample {i}");
        }
        assert!(src.failovers() > 0, "the dead primary forces failover");
        assert_eq!(
            src.metrics_registry()
                .snapshot()
                .counter("serve.client.failover"),
            src.failovers()
        );
        for s in survivors {
            s.shutdown();
        }
    }

    #[test]
    fn spread_reads_still_byte_identical() {
        let addrs = reserve_addrs(3);
        let servers = spawn_cluster(&addrs, 3);
        let mut src = ClusterSource::connect(addrs[1].clone(), "demo").unwrap();
        src.set_spread_reads(true);
        for (i, expected) in samples().iter().enumerate() {
            assert_eq!(&src.fetch(i).unwrap(), expected, "sample {i}");
        }
        for s in servers {
            s.shutdown();
        }
    }
}
