//! Disaggregated dataset serving (paper §VII direction: moving the
//! preprocessing pipeline off the training node).
//!
//! A [`server::ServeBuilder`] exposes any
//! [`SampleSource`](sciml_pipeline::SampleSource) — a directory on the
//! shared file system, an NVMe-staged copy, an in-memory set — over a
//! length-prefixed, CRC-checked TCP protocol; a [`client::RemoteSource`]
//! on the training side implements the same `SampleSource` trait, so
//! the pipeline cannot tell local from remote. The tiering story
//! becomes: shared FS → server NVMe staging → server DRAM hot cache →
//! network → training node.
//!
//! Layout:
//! * [`protocol`] — wire frames (`[len][payload][crc32]`), message
//!   codec, typed [`protocol::ProtocolError`]s for every corruption;
//! * [`server`] — acceptor + bounded worker pool, admission control,
//!   per-dataset DRAM LRU hot cache, counters;
//! * [`client`] — pooled, retrying `RemoteSource`;
//! * [`metrics`] — server-side latency/throughput counters;
//! * [`scrape`] — Prometheus-text metrics exposition endpoint.

pub mod client;
pub mod cluster;
pub mod metrics;
pub mod protocol;
pub mod scrape;
pub mod server;
mod session;

pub use client::{ClientConfig, RemoteSource};
pub use cluster::ClusterSource;
pub use protocol::{Message, ProtocolError, StatsSnapshot, PROTOCOL_VERSION};
pub use scrape::{scrape_once, spawn_scrape_listener, ScrapeHandle};
pub use server::{ClusterConfig, ServeBuilder, ServerConfig, ServerHandle};
