//! Server-side metrics on the shared `sciml-obs` registry, snapshotted
//! into the wire [`StatsSnapshot`] on demand.
//!
//! Request handling time is a full latency histogram
//! (`serve.request_ns`), so v2 stats replies carry p50/p95/p99 tails
//! instead of only a cumulative mean; the old `request_ns` sum stays in
//! the wire snapshot for v1 peers.

use crate::protocol::StatsSnapshot;
use sciml_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;
use std::time::Duration;

/// Instruments shared by every connection handler, registered under
/// `serve.*` names.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Arc<MetricsRegistry>,
    requests: Arc<Counter>,
    samples_served: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    rejected_connections: Arc<Counter>,
    /// Per-encoding store decode counters (`store.decode.*`) — bumped
    /// by the shard source when it shares this registry, surfaced in
    /// v5 stats replies.
    decoded_raw: Arc<Counter>,
    decoded_gzip: Arc<Counter>,
    decoded_pack: Arc<Counter>,
    /// Per-request handling latency, nanoseconds (`serve.request_ns`).
    pub request_latency: Arc<Histogram>,
    /// Connections currently open (`serve.conn.active`).
    pub conn_active: Arc<Gauge>,
    /// Connections admitted over the server's lifetime
    /// (`serve.conn.accepted`).
    pub conn_accepted: Arc<Counter>,
    /// Connections turned away with a typed busy/draining frame
    /// (`serve.conn.rejected_busy`).
    pub conn_rejected_busy: Arc<Counter>,
    /// Connections closed by graceful drain after their in-flight
    /// replies completed (`serve.conn.drained`).
    pub conn_drained: Arc<Counter>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::with_registry(&MetricsRegistry::new())
    }
}

impl ServerMetrics {
    /// Metrics registering their instruments in `registry`.
    pub fn with_registry(registry: &Arc<MetricsRegistry>) -> Self {
        Self {
            registry: Arc::clone(registry),
            requests: registry.counter("serve.requests"),
            samples_served: registry.counter("serve.samples_served"),
            bytes_sent: registry.counter("serve.bytes_sent"),
            rejected_connections: registry.counter("serve.rejected_connections"),
            decoded_raw: registry.counter("store.decode.raw"),
            decoded_gzip: registry.counter("store.decode.gzip"),
            decoded_pack: registry.counter("store.decode.pack"),
            request_latency: registry.histogram("serve.request_ns"),
            conn_active: registry.gauge("serve.conn.active"),
            conn_accepted: registry.counter("serve.conn.accepted"),
            conn_rejected_busy: registry.counter("serve.conn.rejected_busy"),
            conn_drained: registry.counter("serve.conn.drained"),
        }
    }

    /// The registry these instruments live in.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Records one handled request and its latency.
    pub fn record_request(&self, elapsed: Duration) {
        self.requests.inc();
        self.request_latency.record_duration(elapsed);
    }

    /// Records a shipped batch of sample payloads.
    pub fn record_samples(&self, count: u64, bytes: u64) {
        self.samples_served.add(count);
        self.bytes_sent.add(bytes);
    }

    /// Records a connection turned away at the admission limit.
    pub fn record_rejected(&self) {
        self.rejected_connections.inc();
        self.conn_rejected_busy.inc();
    }

    /// Bumps only the legacy `serve.rejected_connections` aggregate —
    /// for the reactor engine, which counts `serve.conn.rejected_busy`
    /// itself.
    pub fn record_rejected_aggregate(&self) {
        self.rejected_connections.inc();
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Connections rejected so far.
    pub fn rejected_connections(&self) -> u64 {
        self.rejected_connections.get()
    }

    /// Builds the wire snapshot; cache counters come from the caller
    /// because they live on the per-dataset caches.
    pub fn snapshot(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_evictions: u64,
    ) -> StatsSnapshot {
        let latency = self.request_latency.snapshot();
        StatsSnapshot {
            requests: self.requests.get(),
            samples_served: self.samples_served.get(),
            bytes_sent: self.bytes_sent.get(),
            cache_hits,
            cache_misses,
            cache_evictions,
            rejected_connections: self.rejected_connections.get(),
            request_ns: latency.sum,
            decoded_raw: self.decoded_raw.get(),
            decoded_gzip: self.decoded_gzip.get(),
            decoded_pack: self.decoded_pack.get(),
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let m = ServerMetrics::default();
        m.record_request(Duration::from_nanos(500));
        m.record_request(Duration::from_nanos(700));
        m.record_samples(4, 4096);
        m.record_rejected();
        let s = m.snapshot(10, 2, 1);
        assert_eq!(s.requests, 2);
        assert_eq!(s.request_ns, 1200);
        assert_eq!(s.samples_served, 4);
        assert_eq!(s.bytes_sent, 4096);
        assert_eq!(s.cache_hits, 10);
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.cache_evictions, 1);
        assert_eq!(s.rejected_connections, 1);
        assert_eq!(s.latency.count, 2);
        assert_eq!(s.latency.min, 500);
        assert_eq!(s.latency.max, 700);
    }

    #[test]
    fn shared_registry_sees_serve_metrics() {
        let reg = MetricsRegistry::new();
        let m = ServerMetrics::with_registry(&reg);
        m.record_request(Duration::from_nanos(100));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.requests"), 1);
        assert_eq!(snap.histogram("serve.request_ns").unwrap().count, 1);
    }

    #[test]
    fn connection_lifecycle_instruments_are_registered() {
        let reg = MetricsRegistry::new();
        let m = ServerMetrics::with_registry(&reg);
        m.conn_accepted.inc();
        m.conn_active.add(1);
        m.conn_drained.inc();
        m.record_rejected();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.conn.accepted"), 1);
        assert_eq!(snap.gauge("serve.conn.active"), 1);
        assert_eq!(snap.counter("serve.conn.drained"), 1);
        assert_eq!(snap.counter("serve.conn.rejected_busy"), 1);
        // The legacy aggregate stays in lockstep with the typed counter.
        assert_eq!(snap.counter("serve.rejected_connections"), 1);
    }
}
