//! Lock-free server-side counters, snapshotted into the wire
//! [`StatsSnapshot`](crate::protocol::StatsSnapshot) on demand.

use crate::protocol::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Atomic counters shared by every connection handler.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    requests: AtomicU64,
    samples_served: AtomicU64,
    bytes_sent: AtomicU64,
    rejected_connections: AtomicU64,
    request_ns: AtomicU64,
}

impl ServerMetrics {
    /// Records one handled request and its latency.
    pub fn record_request(&self, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.request_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records a shipped batch of sample payloads.
    pub fn record_samples(&self, count: u64, bytes: u64) {
        self.samples_served.fetch_add(count, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a connection turned away at the admission limit.
    pub fn record_rejected(&self) {
        self.rejected_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections rejected so far.
    pub fn rejected_connections(&self) -> u64 {
        self.rejected_connections.load(Ordering::Relaxed)
    }

    /// Builds the wire snapshot; cache counters come from the caller
    /// because they live on the per-dataset caches.
    pub fn snapshot(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_evictions: u64,
    ) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            samples_served: self.samples_served.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_evictions,
            rejected_connections: self.rejected_connections.load(Ordering::Relaxed),
            request_ns: self.request_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let m = ServerMetrics::default();
        m.record_request(Duration::from_nanos(500));
        m.record_request(Duration::from_nanos(700));
        m.record_samples(4, 4096);
        m.record_rejected();
        let s = m.snapshot(10, 2, 1);
        assert_eq!(s.requests, 2);
        assert_eq!(s.request_ns, 1200);
        assert_eq!(s.samples_served, 4);
        assert_eq!(s.bytes_sent, 4096);
        assert_eq!(s.cache_hits, 10);
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.cache_evictions, 1);
        assert_eq!(s.rejected_connections, 1);
    }
}
