//! Length-prefixed, CRC-checked binary wire protocol.
//!
//! Every message travels in one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N, u32 LE (tag + body; excludes CRC)
//! 4       N     payload: tag byte + message body
//! 4+N     4     CRC-32 (IEEE, reflected) of the payload, u32 LE
//! ```
//!
//! The length prefix is validated against [`MAX_FRAME_BYTES`] *before*
//! any allocation, so a corrupt or hostile peer cannot trigger an
//! oversized allocation; the CRC is validated before the payload is
//! parsed. All integers are little-endian. Strings are UTF-8 with a
//! `u16` length prefix.

use sciml_compress::crc32::crc32;
use sciml_obs::HistogramSnapshot;
use sciml_store::{ClusterPlan, EncodingChoice, ShardAssignment, ShardPlan};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version spoken by this build. Bumped on incompatible frame
/// or message changes; [`Message::Hello`] negotiates it. Version 2
/// added [`Message::StatsReplyV2`] carrying the request-latency
/// histogram; version 3 added the [`Message::ShardManifest`] exchange
/// so clients can stage whole shards instead of issuing per-sample
/// fetches; version 4 added [`Message::ShardManifestReplyV2`], whose
/// entries carry each shard's payload-encoding byte so stagers can
/// mirror the server store's raw/gzip/pack choice; version 5 added the
/// [`Message::Traced`] request wrapper carrying a distributed-trace
/// context (trace id + parent span id) so server-side spans join the
/// client's trace, and [`Message::StatsReplyV3`] with per-encoding
/// decode counters; version 6 added the [`Message::ClusterManifest`]
/// exchange, which extends the shard-manifest reply with the cluster's
/// node list and each shard's consistent-hash replica set so clients
/// can route fetches and fail over between replicas. Everything else is
/// unchanged, so servers still accept [`MIN_PROTOCOL_VERSION`] clients
/// and reply with v1 messages.
pub const PROTOCOL_VERSION: u16 = 6;

/// Oldest client version the server still accepts.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Hard ceiling on a frame payload (64 MiB). Large enough for a batch
/// of encoded samples, small enough to bound per-connection memory.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Protocol-level failures. Every decode path returns one of these —
/// corruption never panics and never hangs.
#[derive(Debug)]
pub enum ProtocolError {
    /// Frame or field ended before its declared length.
    Truncated,
    /// Frame CRC mismatch (corruption on the wire).
    BadCrc {
        /// CRC computed over the received payload.
        computed: u32,
        /// CRC carried by the frame trailer.
        stored: u32,
    },
    /// Unknown message tag byte.
    UnknownTag(u8),
    /// Length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized(u32),
    /// A counted field exceeds the enclosing payload.
    Malformed(&'static str),
    /// String field is not UTF-8.
    BadUtf8,
    /// Peer speaks an incompatible protocol version.
    VersionMismatch {
        /// Version offered by the peer.
        theirs: u16,
        /// Version spoken locally.
        ours: u16,
    },
    /// Underlying socket error.
    Io(io::Error),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "truncated frame"),
            ProtocolError::BadCrc { computed, stored } => write!(
                f,
                "frame CRC mismatch (computed {computed:#010x}, stored {stored:#010x})"
            ),
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtocolError::Oversized(n) => write!(
                f,
                "frame length {n} exceeds the {MAX_FRAME_BYTES}-byte limit"
            ),
            ProtocolError::Malformed(what) => write!(f, "malformed message: {what}"),
            ProtocolError::BadUtf8 => write!(f, "string field is not UTF-8"),
            ProtocolError::VersionMismatch { theirs, ours } => {
                write!(f, "protocol version mismatch (peer {theirs}, local {ours})")
            }
            ProtocolError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Error codes carried by [`Message::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Dataset name not registered on the server.
    UnknownDataset = 1,
    /// Sample index beyond the dataset length.
    IndexOutOfRange = 2,
    /// Server at its concurrent-connection admission limit.
    Busy = 3,
    /// Version negotiation failed.
    VersionMismatch = 4,
    /// The server failed reading the sample from its backing source.
    SourceError = 5,
    /// Request was malformed or arrived before `Hello`.
    BadRequest = 6,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::UnknownDataset,
            2 => ErrorCode::IndexOutOfRange,
            3 => ErrorCode::Busy,
            4 => ErrorCode::VersionMismatch,
            5 => ErrorCode::SourceError,
            6 => ErrorCode::BadRequest,
            _ => return None,
        })
    }
}

/// Server-side counters shipped in a [`Message::StatsReply`] /
/// [`Message::StatsReplyV2`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests served (all message kinds after `Hello`).
    pub requests: u64,
    /// Sample payloads shipped.
    pub samples_served: u64,
    /// Payload bytes shipped to clients.
    pub bytes_sent: u64,
    /// Hot-cache hits.
    pub cache_hits: u64,
    /// Hot-cache misses (fetches that went to the backing source).
    pub cache_misses: u64,
    /// Hot-cache evictions.
    pub cache_evictions: u64,
    /// Connections rejected at the admission limit.
    pub rejected_connections: u64,
    /// Cumulative request handling time, nanoseconds.
    pub request_ns: u64,
    /// Store payloads decoded from raw entries. Zero when the snapshot
    /// crossed the wire as a pre-v5 reply, which predates the field.
    pub decoded_raw: u64,
    /// Store payloads decoded from gzip entries (pre-v5 replies: 0).
    pub decoded_gzip: u64,
    /// Store payloads decoded from pack entries (pre-v5 replies: 0).
    pub decoded_pack: u64,
    /// Request-latency distribution (nanoseconds). Empty when the
    /// snapshot crossed the wire as a v1 [`Message::StatsReply`], which
    /// predates the field.
    pub latency: HistogramSnapshot,
}

/// One dataset row in a [`Message::DatasetList`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetEntry {
    /// Registered name.
    pub name: String,
    /// Number of samples.
    pub len: u64,
}

/// Every message of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client greeting with its protocol version. Must be first.
    Hello {
        /// Client protocol version.
        version: u16,
    },
    /// Server acceptance of the negotiated version.
    HelloAck {
        /// Version the server will speak.
        version: u16,
    },
    /// Client request for the dataset table.
    ListDatasets,
    /// Server reply: registered datasets.
    DatasetList(Vec<DatasetEntry>),
    /// Client request for one dataset's shape.
    Manifest {
        /// Dataset name.
        name: String,
    },
    /// Server reply to [`Message::Manifest`].
    ManifestReply {
        /// Number of samples in the dataset.
        len: u64,
    },
    /// Client request for a batch of encoded samples.
    FetchSamples {
        /// Dataset name.
        name: String,
        /// Sample indices, any order, duplicates allowed.
        indices: Vec<u64>,
    },
    /// Server reply: one payload per requested index, same order.
    Samples(Vec<Vec<u8>>),
    /// Client request for server counters.
    Stats,
    /// Server reply to [`Message::Stats`] on v1 connections: counters
    /// only, the latency histogram is dropped at encode time.
    StatsReply(StatsSnapshot),
    /// Server reply to [`Message::Stats`] on v2 connections: counters
    /// plus the sparse request-latency histogram.
    StatsReplyV2(StatsSnapshot),
    /// Client request (v3) for a dataset's shard partitioning, so a
    /// stager can copy shard-sized sample ranges instead of issuing
    /// per-sample fetches. `per_shard` is the client's preferred
    /// samples-per-shard for datasets the server has to partition on
    /// the fly (0 = server default); a server backed by a packed store
    /// replies with the store's real shard boundaries instead.
    ShardManifest {
        /// Dataset name.
        name: String,
        /// Preferred samples per synthesized shard (0 = server default).
        per_shard: u64,
    },
    /// Server reply to [`Message::ShardManifest`] on v3 connections:
    /// the staging plan, without encoding metadata. Decoded plans get
    /// [`EncodingChoice::Auto`] so the stager trial-selects locally.
    ShardManifestReply(Vec<ShardPlan>),
    /// Server reply to [`Message::ShardManifest`] on v4 connections:
    /// the staging plan with each shard's payload-encoding byte, so a
    /// stager reproduces the server store's raw/gzip/pack choice.
    ShardManifestReplyV2(Vec<ShardPlan>),
    /// Server reply to [`Message::Stats`] on v5 connections: the v2
    /// body plus per-encoding store decode counters.
    StatsReplyV3(StatsSnapshot),
    /// Request wrapper (v5): carries the client's distributed-trace
    /// context so the server records its spans into the same trace.
    /// Wraps exactly one non-`Traced` request message; v≤4 peers never
    /// see it.
    Traced {
        /// Trace the request belongs to.
        trace_id: u64,
        /// Client span to parent the server's request span under.
        parent_span: u64,
        /// The wrapped request.
        inner: Box<Message>,
    },
    /// Client request (v6) for a dataset's cluster placement: the node
    /// list and each shard's consistent-hash replica set. A server not
    /// running in cluster mode answers with a single-node plan naming
    /// itself, so clients can treat every server uniformly.
    ClusterManifest {
        /// Dataset name.
        name: String,
    },
    /// Server reply to [`Message::ClusterManifest`] on v6 connections:
    /// the full placement, replica indices referring into the node
    /// list (primary first). The placement is also recomputable from
    /// the node list alone (the hash ring is deterministic); the wire
    /// copy spares clients a dependency on ring parameters.
    ClusterManifestReply(ClusterPlan),
    /// Client request to stop the server (loopback/admin use).
    Shutdown,
    /// Server-reported failure.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
}

mod tags {
    pub const HELLO: u8 = 0x01;
    pub const HELLO_ACK: u8 = 0x02;
    pub const LIST_DATASETS: u8 = 0x03;
    pub const DATASET_LIST: u8 = 0x04;
    pub const MANIFEST: u8 = 0x05;
    pub const MANIFEST_REPLY: u8 = 0x06;
    pub const FETCH_SAMPLES: u8 = 0x07;
    pub const SAMPLES: u8 = 0x08;
    pub const STATS: u8 = 0x09;
    pub const STATS_REPLY: u8 = 0x0A;
    pub const SHUTDOWN: u8 = 0x0B;
    pub const STATS_REPLY_V2: u8 = 0x0C;
    pub const SHARD_MANIFEST: u8 = 0x0D;
    pub const SHARD_MANIFEST_REPLY: u8 = 0x0E;
    pub const ERROR: u8 = 0x0F;
    pub const SHARD_MANIFEST_REPLY_V2: u8 = 0x10;
    pub const TRACED: u8 = 0x11;
    pub const STATS_REPLY_V3: u8 = 0x12;
    pub const CLUSTER_MANIFEST: u8 = 0x13;
    pub const CLUSTER_MANIFEST_REPLY: u8 = 0x14;
}

// ------------------------------------------------------------- encoding

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "name too long for the wire");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_stats_counters(out: &mut Vec<u8>, s: &StatsSnapshot) {
    for field in [
        s.requests,
        s.samples_served,
        s.bytes_sent,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.rejected_connections,
        s.request_ns,
    ] {
        out.extend_from_slice(&field.to_le_bytes());
    }
}

fn read_stats_counters(r: &mut Reader<'_>) -> Result<StatsSnapshot, ProtocolError> {
    let mut fields = [0u64; 8];
    for f in &mut fields {
        *f = r.u64()?;
    }
    Ok(StatsSnapshot {
        requests: fields[0],
        samples_served: fields[1],
        bytes_sent: fields[2],
        cache_hits: fields[3],
        cache_misses: fields[4],
        cache_evictions: fields[5],
        rejected_connections: fields[6],
        request_ns: fields[7],
        decoded_raw: 0,
        decoded_gzip: 0,
        decoded_pack: 0,
        latency: HistogramSnapshot::default(),
    })
}

/// Sparse latency histogram: scalar fields then (bucket index, count)
/// pairs. Shared by the v2 and v3 stats replies.
fn put_latency(out: &mut Vec<u8>, s: &StatsSnapshot) {
    let pairs = s.latency.sparse();
    out.extend_from_slice(&s.latency.sum.to_le_bytes());
    out.extend_from_slice(&s.latency.min.to_le_bytes());
    out.extend_from_slice(&s.latency.max.to_le_bytes());
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for (idx, n) in pairs {
        out.extend_from_slice(&idx.to_le_bytes());
        out.extend_from_slice(&n.to_le_bytes());
    }
}

fn read_latency(r: &mut Reader<'_>) -> Result<HistogramSnapshot, ProtocolError> {
    let sum = r.u64()?;
    let min = r.u64()?;
    let max = r.u64()?;
    let count = r.u32()? as usize;
    if count * 10 > r.remaining() {
        return Err(ProtocolError::Malformed(
            "bucket count exceeds payload length",
        ));
    }
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = r.u16()?;
        let n = r.u64()?;
        pairs.push((idx, n));
    }
    Ok(HistogramSnapshot::from_sparse(&pairs, sum, min, max))
}

impl Message {
    /// Serializes the payload (tag + body, no frame envelope).
    pub fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Message::Hello { version } => {
                out.push(tags::HELLO);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Message::HelloAck { version } => {
                out.push(tags::HELLO_ACK);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Message::ListDatasets => out.push(tags::LIST_DATASETS),
            Message::DatasetList(entries) => {
                out.push(tags::DATASET_LIST);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    put_str(&mut out, &e.name);
                    out.extend_from_slice(&e.len.to_le_bytes());
                }
            }
            Message::Manifest { name } => {
                out.push(tags::MANIFEST);
                put_str(&mut out, name);
            }
            Message::ManifestReply { len } => {
                out.push(tags::MANIFEST_REPLY);
                out.extend_from_slice(&len.to_le_bytes());
            }
            Message::FetchSamples { name, indices } => {
                out.push(tags::FETCH_SAMPLES);
                put_str(&mut out, name);
                out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
                for idx in indices {
                    out.extend_from_slice(&idx.to_le_bytes());
                }
            }
            Message::Samples(payloads) => {
                out.push(tags::SAMPLES);
                out.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
                for p in payloads {
                    out.extend_from_slice(&(p.len() as u32).to_le_bytes());
                    out.extend_from_slice(p);
                }
            }
            Message::Stats => out.push(tags::STATS),
            Message::StatsReply(s) => {
                out.push(tags::STATS_REPLY);
                put_stats_counters(&mut out, s);
            }
            Message::StatsReplyV2(s) => {
                out.push(tags::STATS_REPLY_V2);
                put_stats_counters(&mut out, s);
                put_latency(&mut out, s);
            }
            Message::StatsReplyV3(s) => {
                out.push(tags::STATS_REPLY_V3);
                put_stats_counters(&mut out, s);
                for field in [s.decoded_raw, s.decoded_gzip, s.decoded_pack] {
                    out.extend_from_slice(&field.to_le_bytes());
                }
                put_latency(&mut out, s);
            }
            Message::Traced {
                trace_id,
                parent_span,
                inner,
            } => {
                out.push(tags::TRACED);
                out.extend_from_slice(&trace_id.to_le_bytes());
                out.extend_from_slice(&parent_span.to_le_bytes());
                out.extend_from_slice(&inner.to_payload());
            }
            Message::ShardManifest { name, per_shard } => {
                out.push(tags::SHARD_MANIFEST);
                put_str(&mut out, name);
                out.extend_from_slice(&per_shard.to_le_bytes());
            }
            Message::ShardManifestReply(plans) => {
                out.push(tags::SHARD_MANIFEST_REPLY);
                out.extend_from_slice(&(plans.len() as u32).to_le_bytes());
                for p in plans {
                    out.extend_from_slice(&p.id.to_le_bytes());
                    out.extend_from_slice(&p.first.to_le_bytes());
                    out.extend_from_slice(&p.count.to_le_bytes());
                    out.extend_from_slice(&p.bytes.to_le_bytes());
                }
            }
            Message::ShardManifestReplyV2(plans) => {
                out.push(tags::SHARD_MANIFEST_REPLY_V2);
                out.extend_from_slice(&(plans.len() as u32).to_le_bytes());
                for p in plans {
                    out.extend_from_slice(&p.id.to_le_bytes());
                    out.extend_from_slice(&p.first.to_le_bytes());
                    out.extend_from_slice(&p.count.to_le_bytes());
                    out.extend_from_slice(&p.bytes.to_le_bytes());
                    out.push(p.encoding.as_byte());
                }
            }
            Message::ClusterManifest { name } => {
                out.push(tags::CLUSTER_MANIFEST);
                put_str(&mut out, name);
            }
            Message::ClusterManifestReply(plan) => {
                out.push(tags::CLUSTER_MANIFEST_REPLY);
                out.extend_from_slice(&(plan.nodes.len() as u16).to_le_bytes());
                for node in &plan.nodes {
                    put_str(&mut out, node);
                }
                out.extend_from_slice(&plan.replication.to_le_bytes());
                out.extend_from_slice(&(plan.shards.len() as u32).to_le_bytes());
                for a in &plan.shards {
                    out.extend_from_slice(&a.plan.id.to_le_bytes());
                    out.extend_from_slice(&a.plan.first.to_le_bytes());
                    out.extend_from_slice(&a.plan.count.to_le_bytes());
                    out.extend_from_slice(&a.plan.bytes.to_le_bytes());
                    out.push(a.plan.encoding.as_byte());
                    out.extend_from_slice(&(a.replicas.len() as u16).to_le_bytes());
                    for idx in &a.replicas {
                        out.extend_from_slice(&idx.to_le_bytes());
                    }
                }
            }
            Message::Shutdown => out.push(tags::SHUTDOWN),
            Message::Error { code, detail } => {
                out.push(tags::ERROR);
                out.extend_from_slice(&(*code as u16).to_le_bytes());
                put_str(&mut out, detail);
            }
        }
        out
    }

    /// Parses a payload produced by [`Message::to_payload`].
    pub fn from_payload(payload: &[u8]) -> Result<Message, ProtocolError> {
        let mut r = Reader { buf: payload };
        let tag = r.u8()?;
        let msg = match tag {
            tags::HELLO => Message::Hello { version: r.u16()? },
            tags::HELLO_ACK => Message::HelloAck { version: r.u16()? },
            tags::LIST_DATASETS => Message::ListDatasets,
            tags::DATASET_LIST => {
                let count = r.u32()? as usize;
                let mut entries = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let name = r.string()?;
                    let len = r.u64()?;
                    entries.push(DatasetEntry { name, len });
                }
                Message::DatasetList(entries)
            }
            tags::MANIFEST => Message::Manifest { name: r.string()? },
            tags::MANIFEST_REPLY => Message::ManifestReply { len: r.u64()? },
            tags::FETCH_SAMPLES => {
                let name = r.string()?;
                let count = r.u32()? as usize;
                if count * 8 > r.remaining() {
                    return Err(ProtocolError::Malformed(
                        "index count exceeds payload length",
                    ));
                }
                let mut indices = Vec::with_capacity(count);
                for _ in 0..count {
                    indices.push(r.u64()?);
                }
                Message::FetchSamples { name, indices }
            }
            tags::SAMPLES => {
                let count = r.u32()? as usize;
                let mut payloads = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let len = r.u32()? as usize;
                    payloads.push(r.bytes(len)?.to_vec());
                }
                Message::Samples(payloads)
            }
            tags::STATS => Message::Stats,
            tags::STATS_REPLY => Message::StatsReply(read_stats_counters(&mut r)?),
            tags::STATS_REPLY_V2 => {
                let mut s = read_stats_counters(&mut r)?;
                s.latency = read_latency(&mut r)?;
                Message::StatsReplyV2(s)
            }
            tags::STATS_REPLY_V3 => {
                let mut s = read_stats_counters(&mut r)?;
                s.decoded_raw = r.u64()?;
                s.decoded_gzip = r.u64()?;
                s.decoded_pack = r.u64()?;
                s.latency = read_latency(&mut r)?;
                Message::StatsReplyV3(s)
            }
            tags::TRACED => {
                let trace_id = r.u64()?;
                let parent_span = r.u64()?;
                // Reject nesting by tag *before* recursing, so a
                // hostile Traced(Traced(…)) tower cannot blow the
                // stack.
                if r.buf.first() == Some(&tags::TRACED) {
                    return Err(ProtocolError::Malformed("nested trace context"));
                }
                let inner_payload = r.bytes(r.remaining())?;
                if inner_payload.is_empty() {
                    return Err(ProtocolError::Malformed("empty traced request"));
                }
                let inner = Message::from_payload(inner_payload)?;
                Message::Traced {
                    trace_id,
                    parent_span,
                    inner: Box::new(inner),
                }
            }
            tags::SHARD_MANIFEST => {
                let name = r.string()?;
                let per_shard = r.u64()?;
                Message::ShardManifest { name, per_shard }
            }
            tags::SHARD_MANIFEST_REPLY => {
                let count = r.u32()? as usize;
                // Each entry is 4 + 8 + 8 + 8 = 28 bytes on the wire.
                // Division form: `count * 28` could overflow usize on
                // 32-bit targets (count is attacker-controlled).
                if count > r.remaining() / 28 {
                    return Err(ProtocolError::Malformed(
                        "shard plan count exceeds payload length",
                    ));
                }
                let mut plans = Vec::with_capacity(count);
                for _ in 0..count {
                    plans.push(ShardPlan {
                        id: r.u32()?,
                        first: r.u64()?,
                        count: r.u64()?,
                        bytes: r.u64()?,
                        // Pre-v4 replies carry no encoding metadata; the
                        // stager trial-selects per payload.
                        encoding: EncodingChoice::Auto,
                    });
                }
                Message::ShardManifestReply(plans)
            }
            tags::SHARD_MANIFEST_REPLY_V2 => {
                let count = r.u32()? as usize;
                // Each entry is 4 + 8 + 8 + 8 + 1 = 29 bytes on the wire.
                // Division form avoids usize overflow on 32-bit targets.
                if count > r.remaining() / 29 {
                    return Err(ProtocolError::Malformed(
                        "shard plan count exceeds payload length",
                    ));
                }
                let mut plans = Vec::with_capacity(count);
                for _ in 0..count {
                    plans.push(ShardPlan {
                        id: r.u32()?,
                        first: r.u64()?,
                        count: r.u64()?,
                        bytes: r.u64()?,
                        encoding: EncodingChoice::from_byte(r.u8()?)
                            .ok_or(ProtocolError::Malformed("unknown shard encoding byte"))?,
                    });
                }
                Message::ShardManifestReplyV2(plans)
            }
            tags::CLUSTER_MANIFEST => Message::ClusterManifest { name: r.string()? },
            tags::CLUSTER_MANIFEST_REPLY => {
                let node_count = r.u16()? as usize;
                let mut nodes = Vec::with_capacity(node_count.min(1024));
                for _ in 0..node_count {
                    nodes.push(r.string()?);
                }
                let replication = r.u16()?;
                let shard_count = r.u32()? as usize;
                // Each shard is at least a 29-byte plan plus a u16
                // replica count. Division form avoids usize overflow on
                // 32-bit targets (shard_count is attacker-controlled).
                if shard_count > r.remaining() / 31 {
                    return Err(ProtocolError::Malformed(
                        "shard assignment count exceeds payload length",
                    ));
                }
                let mut shards = Vec::with_capacity(shard_count);
                for _ in 0..shard_count {
                    let plan = ShardPlan {
                        id: r.u32()?,
                        first: r.u64()?,
                        count: r.u64()?,
                        bytes: r.u64()?,
                        encoding: EncodingChoice::from_byte(r.u8()?)
                            .ok_or(ProtocolError::Malformed("unknown shard encoding byte"))?,
                    };
                    let replica_count = r.u16()? as usize;
                    let mut replicas = Vec::with_capacity(replica_count.min(64));
                    for _ in 0..replica_count {
                        let idx = r.u16()?;
                        if idx as usize >= node_count {
                            return Err(ProtocolError::Malformed(
                                "replica index out of node range",
                            ));
                        }
                        replicas.push(idx);
                    }
                    shards.push(ShardAssignment { plan, replicas });
                }
                Message::ClusterManifestReply(ClusterPlan {
                    nodes,
                    replication,
                    shards,
                })
            }
            tags::SHUTDOWN => Message::Shutdown,
            tags::ERROR => {
                let raw = r.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or(ProtocolError::Malformed("unknown error code"))?;
                let detail = r.string()?;
                Message::Error { code, detail }
            }
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        if r.remaining() != 0 {
            return Err(ProtocolError::Malformed("trailing bytes after message"));
        }
        Ok(msg)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() < n {
            return Err(ProtocolError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u16()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }
}

// --------------------------------------------------------------- frames

/// Serializes a message into a complete frame (length + payload + CRC).
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let payload = msg.to_payload();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame
}

/// Little-endian u32 at `at` (caller has already bounds-checked; plain
/// indexing keeps this panic-free under the repo's no_panics lint).
fn le_u32_at(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

/// Parses one complete frame from a byte slice, returning the message
/// and the number of bytes consumed.
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), ProtocolError> {
    if buf.len() < 4 {
        return Err(ProtocolError::Truncated);
    }
    let len = le_u32_at(buf, 0);
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized(len));
    }
    let total = 4 + len as usize + 4;
    if buf.len() < total {
        return Err(ProtocolError::Truncated);
    }
    let payload = &buf[4..4 + len as usize];
    let stored = le_u32_at(buf, 4 + len as usize);
    let computed = crc32(payload);
    if stored != computed {
        return Err(ProtocolError::BadCrc { computed, stored });
    }
    Ok((Message::from_payload(payload)?, total))
}

/// Writes one frame to a stream.
pub fn write_message(w: &mut impl Write, msg: &Message) -> Result<(), ProtocolError> {
    let frame = encode_frame(msg);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from a stream, enforcing the size limit before
/// allocating and the CRC before parsing.
pub fn read_message(r: &mut impl Read) -> Result<Message, ProtocolError> {
    let mut head = [0u8; 4];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head);
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    let stored = u32::from_le_bytes(trailer);
    let computed = crc32(&payload);
    if stored != computed {
        return Err(ProtocolError::BadCrc { computed, stored });
    }
    Message::from_payload(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Hello { version: 1 },
            Message::HelloAck { version: 1 },
            Message::ListDatasets,
            Message::DatasetList(vec![
                DatasetEntry {
                    name: "cosmo".into(),
                    len: 1024,
                },
                DatasetEntry {
                    name: "deepcam".into(),
                    len: 77,
                },
            ]),
            Message::Manifest {
                name: "cosmo".into(),
            },
            Message::ManifestReply { len: 1024 },
            Message::FetchSamples {
                name: "cosmo".into(),
                indices: vec![0, 5, 1023, 5],
            },
            Message::Samples(vec![vec![1, 2, 3], vec![], vec![0xFF; 300]]),
            Message::Stats,
            Message::StatsReply(StatsSnapshot {
                requests: 1,
                samples_served: 2,
                bytes_sent: 3,
                cache_hits: 4,
                cache_misses: 5,
                cache_evictions: 6,
                rejected_connections: 7,
                request_ns: 8,
                ..Default::default()
            }),
            Message::StatsReplyV2(StatsSnapshot {
                requests: 1,
                samples_served: 2,
                bytes_sent: 3,
                cache_hits: 4,
                cache_misses: 5,
                cache_evictions: 6,
                rejected_connections: 7,
                request_ns: 8,
                latency: {
                    let h = sciml_obs::Histogram::new();
                    for v in [100u64, 250, 1_000_000, 1_000_001] {
                        h.record(v);
                    }
                    h.snapshot()
                },
                ..Default::default()
            }),
            Message::StatsReplyV3(StatsSnapshot {
                requests: 1,
                samples_served: 2,
                bytes_sent: 3,
                cache_hits: 4,
                cache_misses: 5,
                cache_evictions: 6,
                rejected_connections: 7,
                request_ns: 8,
                decoded_raw: 9,
                decoded_gzip: 10,
                decoded_pack: 11,
                latency: {
                    let h = sciml_obs::Histogram::new();
                    h.record(4200);
                    h.snapshot()
                },
            }),
            Message::Traced {
                trace_id: 0xDEAD_BEEF_0BAD_F00D,
                parent_span: 0x1234_5678_9ABC_DEF0,
                inner: Box::new(Message::FetchSamples {
                    name: "cosmo".into(),
                    indices: vec![7, 8, 9],
                }),
            },
            Message::ShardManifest {
                name: "cosmo".into(),
                per_shard: 128,
            },
            Message::ShardManifestReply(vec![
                ShardPlan {
                    id: 0,
                    first: 0,
                    count: 128,
                    bytes: 1 << 20,
                    encoding: EncodingChoice::Auto,
                },
                ShardPlan {
                    id: 1,
                    first: 128,
                    count: 100,
                    bytes: 0,
                    encoding: EncodingChoice::Auto,
                },
            ]),
            Message::ShardManifestReplyV2(vec![
                ShardPlan {
                    id: 0,
                    first: 0,
                    count: 128,
                    bytes: 1 << 20,
                    encoding: EncodingChoice::Pack,
                },
                ShardPlan {
                    id: 1,
                    first: 128,
                    count: 100,
                    bytes: 0,
                    encoding: EncodingChoice::Gzip,
                },
            ]),
            Message::ClusterManifest {
                name: "cosmo".into(),
            },
            Message::ClusterManifestReply(ClusterPlan {
                nodes: vec!["127.0.0.1:7401".into(), "127.0.0.1:7402".into()],
                replication: 2,
                shards: vec![
                    ShardAssignment {
                        plan: ShardPlan {
                            id: 0,
                            first: 0,
                            count: 128,
                            bytes: 1 << 20,
                            encoding: EncodingChoice::Pack,
                        },
                        replicas: vec![1, 0],
                    },
                    ShardAssignment {
                        plan: ShardPlan {
                            id: 1,
                            first: 128,
                            count: 64,
                            bytes: 512,
                            encoding: EncodingChoice::Raw,
                        },
                        replicas: vec![0, 1],
                    },
                ],
            }),
            Message::Shutdown,
            Message::Error {
                code: ErrorCode::Busy,
                detail: "admission limit".into(),
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let frame = encode_frame(&msg);
            let (decoded, consumed) = decode_frame(&frame).expect("roundtrip");
            assert_eq!(decoded, msg);
            assert_eq!(consumed, frame.len());
        }
    }

    #[test]
    fn every_truncation_errors() {
        for msg in all_messages() {
            let frame = encode_frame(&msg);
            for cut in 0..frame.len() {
                assert!(
                    decode_frame(&frame[..cut]).is_err(),
                    "cut {cut} of {msg:?} did not error"
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // CRC-32 detects all single-bit errors; flipping any bit of the
        // frame must produce *some* protocol error (never a silent
        // wrong decode of the same length).
        let frame = encode_frame(&Message::FetchSamples {
            name: "ds".into(),
            indices: vec![1, 2, 3],
        });
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupt = frame.clone();
                corrupt[byte] ^= 1 << bit;
                match decode_frame(&corrupt) {
                    Err(_) => {}
                    Ok((msg, _)) => panic!("bit {bit} of byte {byte} decoded silently as {msg:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut frame = vec![0u8; 16];
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Oversized(_))
        ));
        // Streaming path too.
        let mut cursor = std::io::Cursor::new(frame);
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtocolError::Oversized(_))
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let payload = vec![0xEEu8, 0, 0];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::UnknownTag(0xEE))
        ));
    }

    #[test]
    fn inner_count_beyond_payload_rejected() {
        // A FetchSamples claiming 1000 indices in a short payload.
        let mut payload = vec![tags::FETCH_SAMPLES];
        payload.extend_from_slice(&2u16.to_le_bytes());
        payload.extend_from_slice(b"ds");
        payload.extend_from_slice(&1000u32.to_le_bytes());
        payload.extend_from_slice(&[0u8; 16]);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn cluster_reply_replica_out_of_range_rejected() {
        // Hand-build a one-node plan whose shard claims replica index 5.
        let mut payload = vec![tags::CLUSTER_MANIFEST_REPLY];
        payload.extend_from_slice(&1u16.to_le_bytes()); // node count
        payload.extend_from_slice(&4u16.to_le_bytes());
        payload.extend_from_slice(b"addr");
        payload.extend_from_slice(&1u16.to_le_bytes()); // replication
        payload.extend_from_slice(&1u32.to_le_bytes()); // shard count
        payload.extend_from_slice(&0u32.to_le_bytes()); // id
        payload.extend_from_slice(&0u64.to_le_bytes()); // first
        payload.extend_from_slice(&1u64.to_le_bytes()); // count
        payload.extend_from_slice(&0u64.to_le_bytes()); // bytes
        payload.push(EncodingChoice::Raw.as_byte());
        payload.extend_from_slice(&1u16.to_le_bytes()); // replica count
        payload.extend_from_slice(&5u16.to_le_bytes()); // out of range
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Malformed("replica index out of node range"))
        ));
    }

    #[test]
    fn cluster_reply_shard_count_beyond_payload_rejected() {
        let mut payload = vec![tags::CLUSTER_MANIFEST_REPLY];
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.extend_from_slice(&4u16.to_le_bytes());
        payload.extend_from_slice(b"addr");
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.extend_from_slice(&100_000u32.to_le_bytes()); // absurd shard count
        payload.extend_from_slice(&[0u8; 32]);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn cluster_reply_shard_count_overflow_rejected() {
        // shard_count = u32::MAX: `count * 31` would wrap usize on
        // 32-bit targets and bypass the bound check, so the decoder
        // must use an overflow-free comparison and reject outright.
        let mut payload = vec![tags::CLUSTER_MANIFEST_REPLY];
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.extend_from_slice(&4u16.to_le_bytes());
        payload.extend_from_slice(b"addr");
        payload.extend_from_slice(&1u16.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0u8; 32]);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn v1_stats_reply_drops_latency_histogram() {
        let h = sciml_obs::Histogram::new();
        h.record(5000);
        let snap = StatsSnapshot {
            requests: 9,
            latency: h.snapshot(),
            ..Default::default()
        };
        let frame = encode_frame(&Message::StatsReply(snap.clone()));
        let (decoded, _) = decode_frame(&frame).unwrap();
        match decoded {
            Message::StatsReply(s) => {
                assert_eq!(s.requests, 9);
                assert!(s.latency.is_empty(), "v1 reply must not carry latency");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The v2 variant keeps it.
        let frame = encode_frame(&Message::StatsReplyV2(snap));
        let (decoded, _) = decode_frame(&frame).unwrap();
        match decoded {
            Message::StatsReplyV2(s) => {
                assert_eq!(s.latency.count, 1);
                assert_eq!(s.latency.percentile(0.5), 5000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shard_plan_count_beyond_payload_rejected() {
        for (tag, entry_len) in [
            (tags::SHARD_MANIFEST_REPLY, 28),
            (tags::SHARD_MANIFEST_REPLY_V2, 29),
        ] {
            let mut payload = vec![tag];
            payload.extend_from_slice(&50_000u32.to_le_bytes());
            payload.extend_from_slice(&vec![0u8; entry_len]); // room for one entry only
            let mut frame = Vec::new();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            assert!(matches!(
                decode_frame(&frame),
                Err(ProtocolError::Malformed(_))
            ));
        }
    }

    #[test]
    fn v1_shard_reply_decodes_encoding_as_auto_and_v2_keeps_it() {
        let plan = ShardPlan {
            id: 7,
            first: 100,
            count: 50,
            bytes: 4096,
            encoding: EncodingChoice::Pack,
        };
        // The v1 reply drops the encoding on the wire; it comes back
        // as Auto so the stager trial-selects locally.
        let frame = encode_frame(&Message::ShardManifestReply(vec![plan]));
        let (decoded, _) = decode_frame(&frame).unwrap();
        match decoded {
            Message::ShardManifestReply(plans) => {
                assert_eq!(plans[0].id, 7);
                assert_eq!(plans[0].encoding, EncodingChoice::Auto);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The v2 reply round-trips it.
        let frame = encode_frame(&Message::ShardManifestReplyV2(vec![plan]));
        let (decoded, _) = decode_frame(&frame).unwrap();
        match decoded {
            Message::ShardManifestReplyV2(plans) => {
                assert_eq!(plans[0].encoding, EncodingChoice::Pack);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v2_shard_reply_unknown_encoding_byte_rejected() {
        let mut payload = vec![tags::SHARD_MANIFEST_REPLY_V2];
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&[0u8; 28]);
        payload.push(0xEE); // not a valid EncodingChoice byte
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Malformed("unknown shard encoding byte"))
        ));
    }

    #[test]
    fn nested_traced_rejected_without_recursion() {
        let inner = Message::Traced {
            trace_id: 1,
            parent_span: 2,
            inner: Box::new(Message::Stats),
        };
        let outer = Message::Traced {
            trace_id: 3,
            parent_span: 4,
            inner: Box::new(inner),
        };
        assert!(matches!(
            decode_frame(&encode_frame(&outer)),
            Err(ProtocolError::Malformed("nested trace context"))
        ));
        // A deep tower must be rejected at the first nesting level,
        // not by exhausting the stack.
        let mut payload = Vec::new();
        for _ in 0..10_000 {
            payload.push(tags::TRACED);
            payload.extend_from_slice(&[0u8; 16]);
        }
        payload.push(tags::STATS);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Malformed("nested trace context"))
        ));
    }

    #[test]
    fn empty_traced_rejected() {
        let mut payload = vec![tags::TRACED];
        payload.extend_from_slice(&[0u8; 16]);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Malformed("empty traced request"))
        ));
    }

    #[test]
    fn v2_stats_reply_zeroes_decode_counters_and_v3_keeps_them() {
        let snap = StatsSnapshot {
            requests: 5,
            decoded_raw: 11,
            decoded_gzip: 22,
            decoded_pack: 33,
            ..Default::default()
        };
        let (decoded, _) =
            decode_frame(&encode_frame(&Message::StatsReplyV2(snap.clone()))).unwrap();
        match decoded {
            Message::StatsReplyV2(s) => {
                assert_eq!(s.requests, 5);
                assert_eq!((s.decoded_raw, s.decoded_gzip, s.decoded_pack), (0, 0, 0));
            }
            other => panic!("unexpected {other:?}"),
        }
        let (decoded, _) = decode_frame(&encode_frame(&Message::StatsReplyV3(snap))).unwrap();
        match decoded {
            Message::StatsReplyV3(s) => {
                assert_eq!(
                    (s.decoded_raw, s.decoded_gzip, s.decoded_pack),
                    (11, 22, 33)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn v2_bucket_count_beyond_payload_rejected() {
        let mut payload = vec![tags::STATS_REPLY_V2];
        payload.extend_from_slice(&[0u8; 64]); // 8 counters
        payload.extend_from_slice(&[0u8; 24]); // sum/min/max
        payload.extend_from_slice(&100_000u32.to_le_bytes());
        payload.extend_from_slice(&[0u8; 20]);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(ProtocolError::Malformed(_))
        ));
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        for msg in all_messages() {
            write_message(&mut buf, &msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in all_messages() {
            assert_eq!(read_message(&mut cursor).unwrap(), msg);
        }
    }
}
