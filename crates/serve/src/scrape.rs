//! Minimal HTTP scrape endpoint exposing the metrics registry as
//! Prometheus text exposition.
//!
//! One background thread, one request per connection, `HTTP/1.0` with
//! `Connection: close` — exactly enough protocol for a Prometheus
//! scraper, `curl`, or the `sciml scrape` self-checker, with no HTTP
//! library. Every request gets a fresh snapshot of the whole registry
//! (counters, gauges, histograms as cumulative buckets) with the
//! tracer's dropped-span gauge refreshed first, regardless of path, so
//! misconfigured scrape paths still return data rather than a 404
//! no one looks at.

use sciml_obs::{prometheus_text, Telemetry};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on the request head we bother reading; a scrape request is a
/// few hundred bytes at most.
const MAX_REQUEST_BYTES: usize = 8192;

/// Running scrape listener. Dropping the handle stops it.
pub struct ScrapeHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl ScrapeHandle {
    /// Address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and joins it.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Poke the blocked accept() so it observes the flag.
        if let Ok(s) = TcpStream::connect(self.addr) {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ScrapeHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Serves one scrape: drains the request head (best effort) and writes
/// the exposition body.
fn serve_scrape(mut stream: TcpStream, telemetry: &Telemetry) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // Read until the blank line ending the request head, a limit, or a
    // timeout; scrape clients send no body.
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(buf.get(..n).unwrap_or(&[]));
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    telemetry.publish_trace_stats();
    sciml_obs::lockcheck::publish(&telemetry.registry);
    sciml_obs::simd::publish(&telemetry.registry);
    let body = prometheus_text(&telemetry.registry.snapshot());
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Binds `addr` (port 0 lets the OS pick) and spawns the scrape
/// thread. Returns the bound address and the stop handle.
pub fn spawn_scrape_listener(
    addr: impl Into<String>,
    telemetry: Telemetry,
) -> io::Result<(SocketAddr, ScrapeHandle)> {
    let listener = TcpListener::bind(addr.into())?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("sciml-scrape".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    serve_scrape(stream, &telemetry);
                }
            })?
    };
    Ok((
        local_addr,
        ScrapeHandle {
            stop,
            addr: local_addr,
            thread: Some(thread),
        },
    ))
}

/// Fetches one scrape over plain TCP and returns the response body.
/// Used by `sciml scrape` and tests, so the repo needs no HTTP client.
pub fn scrape_once(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: sciml\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "scrape response has no header/body separator",
        ));
    };
    if !head.starts_with("HTTP/1.0 200") && !head.starts_with("HTTP/1.1 200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "scrape returned non-200 status: {}",
                head.lines().next().unwrap_or("")
            ),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciml_obs::parse_prometheus;

    #[test]
    fn scrape_returns_parseable_exposition() {
        let telemetry = Telemetry::new();
        telemetry.registry.counter("serve.requests").add(3);
        telemetry.registry.histogram("serve.request_ns").record(777);
        let (addr, handle) = spawn_scrape_listener("127.0.0.1:0", telemetry.clone()).unwrap();
        let body = scrape_once(&addr.to_string()).unwrap();
        let parsed = parse_prometheus(&body).expect("valid exposition");
        assert_eq!(parsed.kind("serve_requests"), Some("counter"));
        assert_eq!(parsed.samples_named("serve_requests")[0].value, "3");
        assert_eq!(parsed.kind("serve_request_ns"), Some("histogram"));
        assert_eq!(parsed.samples_named("serve_request_ns_count")[0].value, "1");
        // The dropped-span gauge is refreshed into every scrape.
        assert_eq!(parsed.kind("obs_trace_dropped_spans"), Some("gauge"));
        // Second scrape sees counter movement.
        telemetry.registry.counter("serve.requests").add(2);
        let body = scrape_once(&addr.to_string()).unwrap();
        let parsed = parse_prometheus(&body).unwrap();
        assert_eq!(parsed.samples_named("serve_requests")[0].value, "5");
        handle.shutdown();
    }

    #[test]
    fn shutdown_unblocks_the_acceptor() {
        let (addr, handle) = spawn_scrape_listener("127.0.0.1:0", Telemetry::disabled()).unwrap();
        handle.shutdown();
        // The port is released; a fresh listener can take over.
        assert!(TcpListener::bind(addr).is_ok());
    }
}
