//! Dataset server with two interchangeable engines.
//!
//! The default engine is the `sciml-net` readiness reactor: one event
//! loop multiplexes every connection over epoll (`poll(2)` elsewhere),
//! a small worker pool runs request handling, and graceful drain
//! finishes in-flight replies before closing. Connection count scales
//! independently of thread count, which is what a training fleet
//! holding thousands of mostly-idle sockets needs.
//!
//! The legacy engine ([`ServerConfig::legacy_threads`]) keeps the
//! original acceptor + bounded worker pool, where each worker owns one
//! connection at a time. It exists for A/B benchmarking and as a
//! fallback; both engines share the same session state machine
//! (`crate::session`), admission control with typed `Busy` frames,
//! and `serve.*` metrics.
//!
//! Each registered dataset is wrapped in a [`MemoryCacheSource`] hot
//! cache, so repeat fetches (second epochs, overlapping shards across
//! clients) are served from DRAM without touching the backing tier.

use crate::metrics::ServerMetrics;
use crate::protocol::{
    decode_frame, encode_frame, read_message, write_message, ErrorCode, Message, ProtocolError,
    MAX_FRAME_BYTES,
};
use crate::session::{process_message, Disposition, SessionState};
use sciml_net::reactor::{ConnId, Reactor, ReactorConfig, ReactorHandle, ReactorMetrics, Reply};
use sciml_net::FrameError;
use sciml_obs::{Counter, MetricsRegistry, Telemetry, Tracer};
use sciml_pipeline::source::MemoryCacheSource;
use sciml_pipeline::SampleSource;
use sciml_store::{ShardPlan, ShardSource};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling requests (connections, in legacy mode).
    pub workers: usize,
    /// Accepted-but-unclaimed connections allowed to queue (legacy
    /// engine only; the reactor admits up to `max_connections`).
    pub accept_backlog: usize,
    /// Hard cap on connections being handled at once; beyond it new
    /// connections get a `Busy` error frame. Defaults to
    /// `workers + accept_backlog`.
    pub max_connections: usize,
    /// Per-dataset DRAM hot-cache capacity in bytes.
    pub cache_bytes: u64,
    /// Socket read timeout for client requests (legacy engine) and
    /// idle-connection timeout (reactor engine). Keeps a dead client
    /// from pinning a worker or a connection slot forever.
    pub read_timeout: Duration,
    /// Reactor engine: hard bound on graceful drain before remaining
    /// connections are force-closed.
    pub drain_timeout: Duration,
    /// Use the legacy thread-per-connection engine instead of the
    /// reactor (A/B benchmarking, fallback).
    pub legacy_threads: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = 4;
        let accept_backlog = 16;
        Self {
            workers,
            accept_backlog,
            max_connections: workers + accept_backlog,
            cache_bytes: 256 << 20,
            read_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            legacy_threads: false,
        }
    }
}

/// Cluster-mode settings: the complete node list (this node included)
/// and the replication factor for consistent-hash shard placement. All
/// cluster members must be configured with the *same* node list, in
/// any order — placement is order-insensitive because ring positions
/// hash the addresses themselves.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Every serving node's `host:port`, as clients reach them.
    pub nodes: Vec<String>,
    /// Replicas per shard (clamped to the node count at placement).
    pub replication: u16,
}

/// One registered dataset: its name, hot-cached source, and (when it is
/// backed by a packed store) its real shard boundaries.
pub(crate) struct Dataset {
    pub(crate) cache: MemoryCacheSource<Arc<dyn SampleSource>>,
    /// Shard partitioning exported to staging clients. `None` means the
    /// server synthesizes one by sample count on request.
    pub(crate) plans: Option<Vec<ShardPlan>>,
}

pub(crate) struct Inner {
    pub(crate) datasets: BTreeMap<String, Dataset>,
    /// Shared `pipeline.cache.memory.*` counters every dataset cache
    /// feeds, read directly for stats replies (summing per-dataset
    /// views of the same shared counters would multiply-count).
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    pub(crate) metrics: ServerMetrics,
    /// Span tracer; disabled unless the builder received a telemetry
    /// handle with an enabled one. Traced (v5) requests open a
    /// `serve/request` span linked to the client's trace.
    pub(crate) tracer: Arc<Tracer>,
    /// Cluster placement config; `None` means single-node answers to
    /// `ClusterManifest`.
    pub(crate) cluster: Option<ClusterConfig>,
    shutting_down: AtomicBool,
    active_connections: AtomicUsize,
    pub(crate) config: ServerConfig,
    pub(crate) local_addr: SocketAddr,
    /// Sockets currently served by the legacy engine, keyed by
    /// connection id, so shutdown can force-close them instead of
    /// waiting out their read timeouts.
    live: parking_lot::Mutex<BTreeMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl Inner {
    /// Flags shutdown, force-closes legacy in-flight connections, and
    /// pokes the listener so a legacy acceptor (blocked in `accept`,
    /// which has no timeout) observes the flag.
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::AcqRel) {
            return;
        }
        for stream in self.live.lock().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Ok(s) = TcpStream::connect(self.local_addr) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Registers a connection for forced close; returns its id, or
    /// `None` when the socket handle cannot be duplicated (the
    /// connection is still served, just not force-closable).
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        self.live.lock().insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: Option<u64>) {
        if let Some(id) = id {
            self.live.lock().remove(&id);
        }
    }

    pub(crate) fn cache_totals(&self) -> (u64, u64, u64) {
        (
            self.cache_hits.get(),
            self.cache_misses.get(),
            self.cache_evictions.get(),
        )
    }
}

/// A dataset registered with the builder: its source plus the shard
/// plan to report over `ShardManifest`, if the source has a real one.
type RegisteredSource = (Arc<dyn SampleSource>, Option<Vec<ShardPlan>>);

/// Builder: register datasets, then [`ServeBuilder::bind`].
pub struct ServeBuilder {
    sources: BTreeMap<String, RegisteredSource>,
    config: ServerConfig,
    registry: Option<Arc<MetricsRegistry>>,
    tracer: Option<Arc<Tracer>>,
    cluster: Option<ClusterConfig>,
}

impl Default for ServeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeBuilder {
    /// Starts an empty builder with default config.
    pub fn new() -> Self {
        Self {
            sources: BTreeMap::new(),
            config: ServerConfig::default(),
            registry: None,
            tracer: None,
            cluster: None,
        }
    }

    /// Overrides the server config.
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers the server's `serve.*` instruments in `registry`
    /// instead of a private one, so server metrics share a snapshot
    /// with whatever else the process records.
    pub fn registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Uses `telemetry`'s registry *and* tracer. With an enabled
    /// tracer, Traced (v5) requests record `serve/request` spans linked
    /// into the requesting client's trace, and per-sample `serve/fetch`
    /// child spans under them.
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.registry = Some(Arc::clone(&telemetry.registry));
        self.tracer = Some(Arc::clone(&telemetry.tracer));
        self
    }

    /// Declares this server a member of a cluster: `ClusterManifest`
    /// replies place shards across `nodes` by consistent hashing with
    /// the given replication factor. Every member must be configured
    /// with the same node list.
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Registers `source` under `name`. At bind time every source is
    /// wrapped in a DRAM hot cache of `cache_bytes`.
    pub fn dataset(mut self, name: impl Into<String>, source: Arc<dyn SampleSource>) -> Self {
        self.sources.insert(name.into(), (source, None));
        self
    }

    /// Registers `source` with an explicit shard partitioning, returned
    /// verbatim to staging clients that send a `ShardManifest` request.
    pub fn dataset_with_plans(
        mut self,
        name: impl Into<String>,
        source: Arc<dyn SampleSource>,
        plans: Vec<ShardPlan>,
    ) -> Self {
        self.sources.insert(name.into(), (source, Some(plans)));
        self
    }

    /// Registers a packed shard store as a dataset, exporting its real
    /// shard boundaries so staging clients fetch whole shards and their
    /// requests line up with the store's on-disk layout.
    pub fn dataset_store(self, name: impl Into<String>, store: Arc<ShardSource>) -> Self {
        let plans = store.manifest().plans();
        self.dataset_with_plans(name, store, plans)
    }

    /// Binds `addr` and spawns the serving engine. Pass port 0 to let
    /// the OS pick; the bound address is on the handle.
    pub fn bind(self, addr: impl Into<String>) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr.into())?;
        let local_addr = listener.local_addr()?;
        let cache_bytes = self.config.cache_bytes;
        let registry = self.registry.unwrap_or_default();
        let datasets = self
            .sources
            .into_iter()
            .map(|(name, (source, plans))| {
                let cache = MemoryCacheSource::with_registry(source, cache_bytes, &registry);
                (name, Dataset { cache, plans })
            })
            .collect();
        let inner = Arc::new(Inner {
            datasets,
            cache_hits: registry.counter("pipeline.cache.memory.hits"),
            cache_misses: registry.counter("pipeline.cache.memory.misses"),
            cache_evictions: registry.counter("pipeline.cache.memory.evictions"),
            metrics: ServerMetrics::with_registry(&registry),
            tracer: self.tracer.unwrap_or_else(Tracer::disabled),
            cluster: self.cluster,
            shutting_down: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            config: self.config,
            local_addr,
            live: parking_lot::Mutex::new(BTreeMap::new()),
            next_conn_id: AtomicU64::new(0),
        });

        let engine = if inner.config.legacy_threads {
            spawn_legacy_engine(&inner, listener)?
        } else {
            spawn_reactor_engine(&inner, listener)?
        };

        Ok(ServerHandle {
            inner,
            local_addr,
            engine,
        })
    }
}

/// Starts the acceptor + bounded worker pool (legacy engine).
fn spawn_legacy_engine(inner: &Arc<Inner>, listener: TcpListener) -> io::Result<Engine> {
    let (conn_tx, conn_rx) =
        crossbeam_channel::bounded::<TcpStream>(inner.config.accept_backlog.max(1));

    let mut workers = Vec::with_capacity(inner.config.workers);
    for worker_id in 0..inner.config.workers.max(1) {
        let rx = conn_rx.clone();
        let inner = Arc::clone(inner);
        workers.push(
            std::thread::Builder::new()
                .name(format!("sciml-serve-worker-{worker_id}"))
                .spawn(move || {
                    while let Ok(stream) = rx.recv() {
                        let id = inner.register(&stream);
                        inner.metrics.conn_accepted.inc();
                        inner.metrics.conn_active.add(1);
                        handle_connection(&inner, stream);
                        inner.metrics.conn_active.add(-1);
                        inner.deregister(id);
                        inner.active_connections.fetch_sub(1, Ordering::AcqRel);
                    }
                })?,
        );
    }
    drop(conn_rx);

    let acceptor = {
        let inner = Arc::clone(inner);
        std::thread::Builder::new()
            .name("sciml-serve-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if inner.shutting_down.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let active = inner.active_connections.fetch_add(1, Ordering::AcqRel) + 1;
                    if active > inner.config.max_connections {
                        inner.active_connections.fetch_sub(1, Ordering::AcqRel);
                        reject_busy(&inner, stream);
                        continue;
                    }
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
                // Dropping conn_tx disconnects the workers' recv loop.
            })?
    };

    Ok(Engine::Legacy {
        acceptor: Some(acceptor),
        workers,
    })
}

/// Starts the `sciml-net` readiness reactor (default engine).
fn spawn_reactor_engine(inner: &Arc<Inner>, listener: TcpListener) -> io::Result<Engine> {
    let cfg = ReactorConfig {
        workers: inner.config.workers.max(1),
        max_connections: inner.config.max_connections,
        idle_timeout: inner.config.read_timeout,
        drain_timeout: inner.config.drain_timeout,
        max_frame_bytes: MAX_FRAME_BYTES,
        ..ReactorConfig::default()
    };
    // The reactor bumps the same Arc'd instruments ServerMetrics
    // registered, so both engines expose identical `serve.conn.*`
    // families.
    let metrics = ReactorMetrics {
        accepted: Arc::clone(&inner.metrics.conn_accepted),
        rejected_busy: Arc::clone(&inner.metrics.conn_rejected_busy),
        drained: Arc::clone(&inner.metrics.conn_drained),
        active: Arc::clone(&inner.metrics.conn_active),
    };
    let service = Arc::new(ScimlService {
        inner: Arc::clone(inner),
        sessions: parking_lot::Mutex::new(HashMap::new()),
    });
    let handle = Reactor::spawn(listener, service, cfg, metrics)?;
    Ok(Engine::Reactor(Some(handle)))
}

/// Glue between the reactor and the protocol session state machine:
/// decodes frames, runs [`process_message`], encodes the reply, and
/// maps [`Disposition`] onto the reactor's [`Reply`] actions.
struct ScimlService {
    inner: Arc<Inner>,
    /// Per-connection negotiation state. The reactor dispatches at most
    /// one frame per connection at a time, so each entry's lock is
    /// uncontended; the map lock is held only for lookup/insert.
    sessions: parking_lot::Mutex<HashMap<ConnId, Arc<parking_lot::Mutex<SessionState>>>>,
}

impl sciml_net::Service for ScimlService {
    fn handle(&self, conn: ConnId, frame_bytes: Vec<u8>) -> Reply {
        let Some(session) = self.sessions.lock().get(&conn).cloned() else {
            // Unknown connection (already disconnected): nothing to say.
            return Reply::close();
        };
        let request = match decode_frame(&frame_bytes) {
            Ok((msg, _)) => msg,
            // Wire corruption: answer with a typed frame, then drop the
            // connection (framing may be unrecoverable after garbage).
            Err(e) => {
                return Reply::send_close(encode_frame(&Message::Error {
                    code: ErrorCode::BadRequest,
                    detail: format!("protocol error: {e}"),
                }))
            }
        };
        let mut state = session.lock();
        match process_message(&self.inner, &mut state, request) {
            Disposition::Reply(reply) => Reply::send(encode_frame(&reply)),
            Disposition::ReplyThenClose(reply) => Reply::send_close(encode_frame(&reply)),
            Disposition::ReplyThenShutdown(reply) => {
                self.inner.shutting_down.store(true, Ordering::Release);
                Reply {
                    frame: Some(encode_frame(&reply)),
                    close: false,
                    shutdown: true,
                }
            }
        }
    }

    fn reject_frame(&self, draining: bool) -> Option<Vec<u8>> {
        // The reactor already counted `serve.conn.rejected_busy`; keep
        // the legacy `serve.rejected_connections` aggregate in lockstep
        // for stats replies.
        self.inner.metrics.record_rejected_aggregate();
        let detail = if draining {
            "server is draining"
        } else {
            "server at its connection admission limit"
        };
        Some(encode_frame(&Message::Error {
            code: ErrorCode::Busy,
            detail: detail.into(),
        }))
    }

    fn frame_error_frame(&self, _conn: ConnId, err: &FrameError) -> Option<Vec<u8>> {
        Some(encode_frame(&Message::Error {
            code: ErrorCode::BadRequest,
            detail: format!("protocol error: {err}"),
        }))
    }

    fn connected(&self, conn: ConnId) {
        self.sessions.lock().insert(
            conn,
            Arc::new(parking_lot::Mutex::new(SessionState::default())),
        );
    }

    fn disconnected(&self, conn: ConnId) {
        self.sessions.lock().remove(&conn);
    }
}

/// Sends a `Busy` error frame through the same framed-write path as
/// normal replies, records the rejection, and closes the socket.
/// Best-effort: the client may already be gone.
fn reject_busy(inner: &Inner, mut stream: TcpStream) {
    inner.metrics.record_rejected();
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let reply = Message::Error {
        code: ErrorCode::Busy,
        detail: "server at its connection admission limit".into(),
    };
    // Same write-error handling as the request loop: a failed write
    // just ends the connection.
    let _ = write_reply(&mut stream, &reply);
    let _ = stream.shutdown(Shutdown::Both);
}

/// The single framed-write path for the legacy engine; returns `false`
/// when the client is gone.
fn write_reply(stream: &mut TcpStream, msg: &Message) -> bool {
    write_message(stream, msg).is_ok()
}

/// The two serving engines behind a [`ServerHandle`].
enum Engine {
    Legacy {
        acceptor: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
    },
    Reactor(Option<ReactorHandle>),
}

/// Running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    engine: Engine,
}

impl ServerHandle {
    /// Address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests handled so far (all datasets).
    pub fn requests(&self) -> u64 {
        self.inner.metrics.requests()
    }

    /// Connections rejected at the admission limit so far.
    pub fn rejected_connections(&self) -> u64 {
        self.inner.metrics.rejected_connections()
    }

    /// Current stats snapshot, identical to a wire `Stats` request.
    pub fn stats(&self) -> crate::protocol::StatsSnapshot {
        let (h, m, e) = self.inner.cache_totals();
        self.inner.metrics.snapshot(h, m, e)
    }

    /// The registry holding this server's `serve.*` instruments (the
    /// one passed to [`ServeBuilder::registry`], or a private one).
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        self.inner.metrics.registry()
    }

    /// Begins graceful drain without blocking: stop admitting (new
    /// connections get a typed draining/busy frame), let in-flight
    /// requests finish and their replies flush, then close. Call
    /// [`ServerHandle::shutdown`] or drop the handle to wait for
    /// completion. On the legacy engine — whose workers block in
    /// `read` — this falls back to the hard shutdown path.
    pub fn begin_drain(&self) {
        match &self.engine {
            Engine::Reactor(Some(handle)) => handle.begin_drain(),
            Engine::Reactor(None) => {}
            Engine::Legacy { .. } => self.inner.begin_shutdown(),
        }
    }

    /// Stops accepting, drains in-flight work, and joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Blocks until the server stops — i.e. until a client sends a wire
    /// `Shutdown` (or the handle is shut down from another thread).
    /// Used by `sciml serve`.
    pub fn join(mut self) {
        match &mut self.engine {
            Engine::Legacy { acceptor, workers } => {
                if let Some(acceptor) = acceptor.take() {
                    let _ = acceptor.join();
                }
                for w in workers.drain(..) {
                    let _ = w.join();
                }
            }
            Engine::Reactor(handle) => {
                if let Some(handle) = handle.take() {
                    handle.join();
                }
            }
        }
    }

    fn shutdown_impl(&mut self) {
        match &mut self.engine {
            Engine::Legacy { acceptor, workers } => {
                self.inner.begin_shutdown();
                if let Some(acceptor) = acceptor.take() {
                    let _ = acceptor.join();
                }
                for w in workers.drain(..) {
                    let _ = w.join();
                }
            }
            Engine::Reactor(handle) => {
                self.inner.shutting_down.store(true, Ordering::Release);
                if let Some(handle) = handle.take() {
                    handle.shutdown();
                }
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Serves one connection until the client disconnects, errors, or asks
/// for shutdown (legacy engine). Protocol errors are answered with a
/// typed error frame where the socket still works, then the connection
/// is dropped — corruption never takes down the worker.
fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    if inner.shutting_down.load(Ordering::Acquire) {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let _ = stream.set_nodelay(true);

    let mut state = SessionState::default();
    loop {
        let request = match read_message(&mut stream) {
            Ok(msg) => msg,
            // Clean disconnect or wire corruption: answer corruption
            // with a typed frame if possible, then drop the connection
            // (framing may be unrecoverable after garbage).
            Err(ProtocolError::Io(_)) => return,
            Err(e) => {
                let _ = write_reply(
                    &mut stream,
                    &Message::Error {
                        code: ErrorCode::BadRequest,
                        detail: format!("protocol error: {e}"),
                    },
                );
                return;
            }
        };
        match process_message(inner, &mut state, request) {
            Disposition::Reply(reply) => {
                if !write_reply(&mut stream, &reply) {
                    return;
                }
            }
            Disposition::ReplyThenClose(reply) => {
                let _ = write_reply(&mut stream, &reply);
                return;
            }
            Disposition::ReplyThenShutdown(reply) => {
                // Shutdown must be acknowledged before begin_shutdown()
                // force-closes the live sockets — the requester's
                // included.
                let _ = write_reply(&mut stream, &reply);
                inner.begin_shutdown();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PROTOCOL_VERSION;
    use sciml_pipeline::source::VecSource;

    fn demo_source() -> Arc<dyn SampleSource> {
        Arc::new(VecSource::new((0..8u8).map(|i| vec![i; 16]).collect()))
    }

    fn client(addr: SocketAddr) -> TcpStream {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_message(
            &mut s,
            &Message::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        assert_eq!(
            read_message(&mut s).unwrap(),
            Message::HelloAck {
                version: PROTOCOL_VERSION
            }
        );
        s
    }

    #[test]
    fn serves_manifest_and_samples() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());

        write_message(&mut c, &Message::ListDatasets).unwrap();
        let Message::DatasetList(list) = read_message(&mut c).unwrap() else {
            panic!("expected dataset list");
        };
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].name, "demo");
        assert_eq!(list[0].len, 8);

        write_message(
            &mut c,
            &Message::FetchSamples {
                name: "demo".into(),
                indices: vec![3, 3, 0],
            },
        )
        .unwrap();
        let Message::Samples(samples) = read_message(&mut c).unwrap() else {
            panic!("expected samples");
        };
        assert_eq!(samples, vec![vec![3u8; 16], vec![3u8; 16], vec![0u8; 16]]);

        server.shutdown();
    }

    #[test]
    fn legacy_engine_serves_identically() {
        let server = ServeBuilder::new()
            .config(ServerConfig {
                legacy_threads: true,
                ..ServerConfig::default()
            })
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());
        write_message(
            &mut c,
            &Message::FetchSamples {
                name: "demo".into(),
                indices: vec![1, 2],
            },
        )
        .unwrap();
        let Message::Samples(samples) = read_message(&mut c).unwrap() else {
            panic!("expected samples");
        };
        assert_eq!(samples, vec![vec![1u8; 16], vec![2u8; 16]]);
        server.shutdown();
    }

    #[test]
    fn unknown_dataset_and_bad_index_get_typed_errors() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());

        write_message(
            &mut c,
            &Message::Manifest {
                name: "nope".into(),
            },
        )
        .unwrap();
        assert!(matches!(
            read_message(&mut c).unwrap(),
            Message::Error {
                code: ErrorCode::UnknownDataset,
                ..
            }
        ));

        write_message(
            &mut c,
            &Message::FetchSamples {
                name: "demo".into(),
                indices: vec![999],
            },
        )
        .unwrap();
        assert!(matches!(
            read_message(&mut c).unwrap(),
            Message::Error {
                code: ErrorCode::IndexOutOfRange,
                ..
            }
        ));

        server.shutdown();
    }

    #[test]
    fn version_mismatch_rejected() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        // Pre-MIN relics are turned away.
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_message(&mut s, &Message::Hello { version: 0 }).unwrap();
        assert!(matches!(
            read_message(&mut s).unwrap(),
            Message::Error {
                code: ErrorCode::VersionMismatch,
                ..
            }
        ));
        server.shutdown();
    }

    #[test]
    fn newer_client_downgraded_to_server_version() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // A hypothetical future client offers v999; the server answers
        // with the highest version it speaks and the connection works.
        write_message(&mut s, &Message::Hello { version: 999 }).unwrap();
        assert_eq!(
            read_message(&mut s).unwrap(),
            Message::HelloAck {
                version: PROTOCOL_VERSION
            }
        );
        write_message(&mut s, &Message::ListDatasets).unwrap();
        assert!(matches!(
            read_message(&mut s).unwrap(),
            Message::DatasetList(_)
        ));
        server.shutdown();
    }

    #[test]
    fn traced_request_records_linked_spans() {
        let telemetry = Telemetry::new();
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .telemetry(&telemetry)
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());
        write_message(
            &mut c,
            &Message::Traced {
                trace_id: 0xAAAA,
                parent_span: 0xBBBB,
                inner: Box::new(Message::FetchSamples {
                    name: "demo".into(),
                    indices: vec![0, 1],
                }),
            },
        )
        .unwrap();
        let Message::Samples(samples) = read_message(&mut c).unwrap() else {
            panic!("expected samples");
        };
        assert_eq!(samples.len(), 2);
        server.shutdown();

        let events = telemetry.tracer.events();
        let request = events
            .iter()
            .find(|e| e.name == "request")
            .expect("request span recorded");
        let req_ids = request.ids.expect("request span carries ids");
        assert_eq!(req_ids.trace_id, 0xAAAA);
        assert_eq!(req_ids.parent_id, 0xBBBB);
        let fetches: Vec<_> = events.iter().filter(|e| e.name == "fetch").collect();
        assert_eq!(fetches.len(), 2, "one serve/fetch span per sample");
        for f in fetches {
            let ids = f.ids.expect("fetch spans join the trace");
            assert_eq!(ids.trace_id, 0xAAAA);
            assert_eq!(ids.parent_id, req_ids.span_id);
        }
    }

    #[test]
    fn traced_request_on_old_connection_gets_bad_request() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_message(&mut s, &Message::Hello { version: 4 }).unwrap();
        assert_eq!(
            read_message(&mut s).unwrap(),
            Message::HelloAck { version: 4 }
        );
        write_message(
            &mut s,
            &Message::Traced {
                trace_id: 1,
                parent_span: 2,
                inner: Box::new(Message::Stats),
            },
        )
        .unwrap();
        assert!(matches!(
            read_message(&mut s).unwrap(),
            Message::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        // The connection survives the rejected envelope.
        write_message(&mut s, &Message::Stats).unwrap();
        assert!(matches!(
            read_message(&mut s).unwrap(),
            Message::StatsReplyV2(_)
        ));
        server.shutdown();
    }

    #[test]
    fn garbage_after_hello_gets_error_frame_not_hang() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());
        // A frame with a valid envelope but unknown tag.
        let payload = [0xEEu8];
        use std::io::Write as _;
        c.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        c.write_all(&payload).unwrap();
        c.write_all(&sciml_compress::crc32::crc32(&payload).to_le_bytes())
            .unwrap();
        c.flush().unwrap();
        assert!(matches!(
            read_message(&mut c).unwrap(),
            Message::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        server.shutdown();
    }

    #[test]
    fn second_epoch_hits_hot_cache() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());
        for _ in 0..2 {
            write_message(
                &mut c,
                &Message::FetchSamples {
                    name: "demo".into(),
                    indices: (0..8).collect(),
                },
            )
            .unwrap();
            let Message::Samples(s) = read_message(&mut c).unwrap() else {
                panic!("expected samples");
            };
            assert_eq!(s.len(), 8);
        }
        write_message(&mut c, &Message::Stats).unwrap();
        let Message::StatsReplyV3(stats) = read_message(&mut c).unwrap() else {
            panic!("expected v3 stats on a v5+ connection");
        };
        assert_eq!(stats.cache_misses, 8);
        assert_eq!(stats.cache_hits, 8);
        assert_eq!(stats.samples_served, 16);
        assert!(
            stats.latency.count >= 2,
            "request latency histogram populated"
        );
        server.shutdown();
    }

    #[test]
    fn v1_client_negotiates_and_gets_v1_stats() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_message(&mut s, &Message::Hello { version: 1 }).unwrap();
        assert_eq!(
            read_message(&mut s).unwrap(),
            Message::HelloAck { version: 1 },
            "server must ack the old version, not its own"
        );
        write_message(&mut s, &Message::Stats).unwrap();
        let Message::StatsReply(stats) = read_message(&mut s).unwrap() else {
            panic!("v1 connection must get a v1 stats reply");
        };
        assert!(stats.latency.is_empty());
        server.shutdown();
    }

    #[test]
    fn v3_client_gets_v1_shard_manifest_reply() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_message(&mut s, &Message::Hello { version: 3 }).unwrap();
        assert_eq!(
            read_message(&mut s).unwrap(),
            Message::HelloAck { version: 3 }
        );
        write_message(
            &mut s,
            &Message::ShardManifest {
                name: "demo".into(),
                per_shard: 3,
            },
        )
        .unwrap();
        let Message::ShardManifestReply(plans) = read_message(&mut s).unwrap() else {
            panic!("v3 connection must get the v1 shard manifest reply");
        };
        assert_eq!(plans.len(), 3);
        server.shutdown();
    }

    #[test]
    fn shard_manifest_synthesized_for_plain_dataset() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());
        write_message(
            &mut c,
            &Message::ShardManifest {
                name: "demo".into(),
                per_shard: 3,
            },
        )
        .unwrap();
        let Message::ShardManifestReplyV2(plans) = read_message(&mut c).unwrap() else {
            panic!("expected v2 shard manifest reply on a v4+ connection");
        };
        assert_eq!(plans.len(), 3);
        assert_eq!(plans.iter().map(|p| p.count).sum::<u64>(), 8);
        assert_eq!(plans[2].first, 6);
        assert_eq!(plans[2].count, 2);

        // per_shard 0 means "server's choice": one shard here, since the
        // default chunk exceeds the dataset.
        write_message(
            &mut c,
            &Message::ShardManifest {
                name: "demo".into(),
                per_shard: 0,
            },
        )
        .unwrap();
        let Message::ShardManifestReplyV2(plans) = read_message(&mut c).unwrap() else {
            panic!("expected v2 shard manifest reply on a v4+ connection");
        };
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].count, 8);

        write_message(
            &mut c,
            &Message::ShardManifest {
                name: "nope".into(),
                per_shard: 0,
            },
        )
        .unwrap();
        assert!(matches!(
            read_message(&mut c).unwrap(),
            Message::Error {
                code: ErrorCode::UnknownDataset,
                ..
            }
        ));
        server.shutdown();
    }

    #[test]
    fn shard_manifest_reports_real_store_plans() {
        use sciml_pipeline::source::VecSource;
        use sciml_store::{pack_store, PackConfig};

        let dir = std::env::temp_dir().join(format!(
            "sciml_serve_store_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let samples: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 100]).collect();
        pack_store(
            &VecSource::new(samples),
            &dir,
            PackConfig {
                target_shard_bytes: 300,
                ..PackConfig::default()
            },
        )
        .unwrap();
        let store = Arc::new(ShardSource::open(&dir).unwrap());
        let expected = store.manifest().plans();
        assert!(expected.len() > 1, "test store must span several shards");

        let server = ServeBuilder::new()
            .dataset_store("packed", store)
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());
        // per_shard is ignored for store-backed datasets: the real
        // on-disk boundaries win.
        write_message(
            &mut c,
            &Message::ShardManifest {
                name: "packed".into(),
                per_shard: 1,
            },
        )
        .unwrap();
        let Message::ShardManifestReplyV2(plans) = read_message(&mut c).unwrap() else {
            panic!("expected v2 shard manifest reply on a v4+ connection");
        };
        assert_eq!(plans, expected);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_registry_exposes_server_metrics() {
        let reg = MetricsRegistry::new();
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .registry(Arc::clone(&reg))
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());
        write_message(
            &mut c,
            &Message::FetchSamples {
                name: "demo".into(),
                indices: vec![0, 1],
            },
        )
        .unwrap();
        let Message::Samples(_) = read_message(&mut c).unwrap() else {
            panic!("expected samples");
        };
        let snap = reg.snapshot();
        assert_eq!(snap.counter("serve.samples_served"), 2);
        assert_eq!(snap.histogram("serve.request_ns").unwrap().count, 1);
        assert_eq!(snap.counter("serve.conn.accepted"), 1);
        assert_eq!(snap.gauge("serve.conn.active"), 1);
        server.shutdown();
    }

    #[test]
    fn cluster_manifest_without_config_names_self() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());
        write_message(
            &mut c,
            &Message::ClusterManifest {
                name: "demo".into(),
            },
        )
        .unwrap();
        let Message::ClusterManifestReply(plan) = read_message(&mut c).unwrap() else {
            panic!("expected cluster manifest reply");
        };
        assert_eq!(plan.nodes, vec![server.local_addr().to_string()]);
        assert_eq!(plan.replication, 1);
        assert!(!plan.shards.is_empty());
        assert!(plan.shards.iter().all(|a| a.replicas == vec![0]));
        plan.validate().expect("single-node plan is valid");
        server.shutdown();
    }

    #[test]
    fn cluster_manifest_reports_configured_placement() {
        let nodes = vec![
            "10.0.0.1:7000".to_string(),
            "10.0.0.2:7000".to_string(),
            "10.0.0.3:7000".to_string(),
        ];
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .cluster(ClusterConfig {
                nodes: nodes.clone(),
                replication: 2,
            })
            .bind("127.0.0.1:0")
            .unwrap();
        let mut c = client(server.local_addr());
        write_message(
            &mut c,
            &Message::ClusterManifest {
                name: "demo".into(),
            },
        )
        .unwrap();
        let Message::ClusterManifestReply(plan) = read_message(&mut c).unwrap() else {
            panic!("expected cluster manifest reply");
        };
        assert_eq!(plan.nodes, nodes);
        assert_eq!(plan.replication, 2);
        plan.validate().expect("plan is valid");
        // Placement must match a locally computed one (deterministic
        // ring), so any member answers identically.
        let plans: Vec<ShardPlan> = plan.shards.iter().map(|a| a.plan).collect();
        let local = sciml_store::ClusterPlan::assign(&plans, &nodes, 2);
        assert_eq!(plan, local);
        server.shutdown();
    }

    #[test]
    fn cluster_manifest_needs_v6() {
        let server = ServeBuilder::new()
            .dataset("demo", demo_source())
            .bind("127.0.0.1:0")
            .unwrap();
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_message(&mut s, &Message::Hello { version: 5 }).unwrap();
        assert_eq!(
            read_message(&mut s).unwrap(),
            Message::HelloAck { version: 5 }
        );
        write_message(
            &mut s,
            &Message::ClusterManifest {
                name: "demo".into(),
            },
        )
        .unwrap();
        assert!(matches!(
            read_message(&mut s).unwrap(),
            Message::Error {
                code: ErrorCode::BadRequest,
                ..
            }
        ));
        // The connection survives the premature request.
        write_message(&mut s, &Message::Stats).unwrap();
        assert!(matches!(
            read_message(&mut s).unwrap(),
            Message::StatsReplyV3(_)
        ));
        server.shutdown();
    }
}
