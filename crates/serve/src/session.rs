//! Per-connection protocol state machine, shared by both serving
//! engines.
//!
//! The legacy thread-per-connection loop and the reactor's
//! [`Service`](sciml_net::Service) callback both funnel every decoded
//! request through [`process_message`]: version negotiation, the v5
//! trace-context unwrap, request dispatch, and request accounting live
//! here exactly once. The engines only differ in how bytes reach the
//! decoder and how the returned [`Disposition`] is written back.

use crate::protocol::{DatasetEntry, ErrorCode, Message, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::server::Inner;
use sciml_pipeline::SampleSource;
use sciml_store::manifest::plan_by_count;
use sciml_store::ClusterPlan;
use std::time::Instant;

/// Samples per synthesized shard when a client asks for a staging plan
/// without a preference and the dataset has no packed-store manifest.
const DEFAULT_PLAN_PER_SHARD: u64 = 64;

/// Negotiation state of one connection. Fresh connections start with no
/// agreed version; the first message must be a `Hello`.
#[derive(Debug, Default)]
pub(crate) struct SessionState {
    /// Protocol version agreed at negotiation, `None` before `Hello`.
    pub(crate) negotiated: Option<u16>,
}

/// What the engine must do with the computed reply.
#[derive(Debug)]
pub(crate) enum Disposition {
    /// Write the reply, keep the connection open.
    Reply(Message),
    /// Write the reply, then close this connection.
    ReplyThenClose(Message),
    /// Write the reply, then begin server shutdown/drain.
    ReplyThenShutdown(Message),
}

/// Runs one request through the session state machine and returns the
/// reply plus what to do with the connection. Negotiation messages are
/// not counted as requests; everything after `Hello` records into
/// `serve.requests` / `serve.request_ns`.
pub(crate) fn process_message(
    inner: &Inner,
    state: &mut SessionState,
    request: Message,
) -> Disposition {
    // Version negotiation first: anything else is a protocol error.
    // The server speaks every version in MIN..=PROTOCOL_VERSION and
    // acks the highest one both sides understand — a client offering a
    // *newer* version than ours gets ours back and proceeds with the
    // shared subset, so only pre-MIN relics are turned away.
    let Some(negotiated) = state.negotiated else {
        return match request {
            Message::Hello { version } if version >= MIN_PROTOCOL_VERSION => {
                let agreed = version.min(PROTOCOL_VERSION);
                state.negotiated = Some(agreed);
                Disposition::Reply(Message::HelloAck { version: agreed })
            }
            Message::Hello { version } => Disposition::ReplyThenClose(Message::Error {
                code: ErrorCode::VersionMismatch,
                detail: format!("client speaks v{version}, server speaks v{PROTOCOL_VERSION}"),
            }),
            _ => Disposition::ReplyThenClose(Message::Error {
                code: ErrorCode::BadRequest,
                detail: "first message must be Hello".into(),
            }),
        };
    };

    let started = Instant::now();
    // Unwrap the v5 trace-context envelope. The linked span stays open
    // across respond(), so per-sample child spans nest under it and it
    // records the request's full handling time.
    let (request, _request_span) = match request {
        Message::Traced {
            trace_id,
            parent_span,
            inner: boxed,
        } => {
            if negotiated < 5 {
                let reply = Message::Error {
                    code: ErrorCode::BadRequest,
                    detail: format!("Traced requests need v5, connection is v{negotiated}"),
                };
                inner.metrics.record_request(started.elapsed());
                return Disposition::Reply(reply);
            }
            let span = inner
                .tracer
                .span_linked("serve", "request", trace_id, parent_span);
            (*boxed, Some(span))
        }
        other => (other, None),
    };
    let (reply, stop) = respond(inner, request, negotiated);
    inner.metrics.record_request(started.elapsed());
    if stop {
        Disposition::ReplyThenShutdown(reply)
    } else {
        Disposition::Reply(reply)
    }
}

/// Computes the reply for one request; `true` means "begin shutdown
/// after the reply is on the wire". `negotiated` is the connection's
/// protocol version — it selects the stats-reply flavour (v2 carries
/// the latency histogram, v3 the decode counters) and gates the v6
/// cluster manifest.
fn respond(inner: &Inner, request: Message, negotiated: u16) -> (Message, bool) {
    let stats_reply = |snapshot| {
        if negotiated >= 5 {
            Message::StatsReplyV3(snapshot)
        } else if negotiated >= 2 {
            Message::StatsReplyV2(snapshot)
        } else {
            Message::StatsReply(snapshot)
        }
    };
    match request {
        Message::ListDatasets => {
            let entries = inner
                .datasets
                .iter()
                .map(|(name, ds)| DatasetEntry {
                    name: name.clone(),
                    len: ds.cache.len() as u64,
                })
                .collect();
            (Message::DatasetList(entries), false)
        }
        Message::Manifest { name } => match inner.datasets.get(&name) {
            Some(ds) => (
                Message::ManifestReply {
                    len: ds.cache.len() as u64,
                },
                false,
            ),
            None => (unknown_dataset(&name), false),
        },
        Message::FetchSamples { name, indices } => {
            let Some(ds) = inner.datasets.get(&name) else {
                return (unknown_dataset(&name), false);
            };
            let mut payloads = Vec::with_capacity(indices.len());
            let mut bytes = 0u64;
            for idx in &indices {
                if *idx >= ds.cache.len() as u64 {
                    return (
                        Message::Error {
                            code: ErrorCode::IndexOutOfRange,
                            detail: format!(
                                "index {idx} out of range for '{name}' (len {})",
                                ds.cache.len()
                            ),
                        },
                        false,
                    );
                }
                // Child of the connection's request span (when the
                // request arrived Traced); invisible otherwise.
                let _fetch_span = inner.tracer.span("serve", "fetch");
                match ds.cache.fetch(*idx as usize) {
                    Ok(sample) => {
                        bytes += sample.len() as u64;
                        payloads.push(sample);
                    }
                    Err(e) => {
                        return (
                            Message::Error {
                                code: ErrorCode::SourceError,
                                detail: format!("fetching '{name}'[{idx}]: {e}"),
                            },
                            false,
                        )
                    }
                }
            }
            inner.metrics.record_samples(payloads.len() as u64, bytes);
            (Message::Samples(payloads), false)
        }
        Message::ShardManifest { name, per_shard } => {
            match dataset_plans(inner, &name, per_shard) {
                Some(plans) if negotiated >= 4 => (Message::ShardManifestReplyV2(plans), false),
                Some(plans) => (Message::ShardManifestReply(plans), false),
                None => (unknown_dataset(&name), false),
            }
        }
        Message::ClusterManifest { name } => {
            if negotiated < 6 {
                return (
                    Message::Error {
                        code: ErrorCode::BadRequest,
                        detail: format!("ClusterManifest needs v6, connection is v{negotiated}"),
                    },
                    false,
                );
            }
            let Some(plans) = dataset_plans(inner, &name, 0) else {
                return (unknown_dataset(&name), false);
            };
            // Without cluster config the server is a cluster of one:
            // every shard's sole replica is this node, so clients can
            // treat all servers uniformly.
            let (nodes, replication) = match &inner.cluster {
                Some(c) => (c.nodes.clone(), c.replication),
                None => (vec![inner.local_addr.to_string()], 1),
            };
            (
                Message::ClusterManifestReply(ClusterPlan::assign(&plans, &nodes, replication)),
                false,
            )
        }
        Message::Stats => {
            let (h, m, e) = inner.cache_totals();
            (stats_reply(inner.metrics.snapshot(h, m, e)), false)
        }
        Message::Shutdown => {
            // Acknowledge with the final counters; the engine triggers
            // shutdown after the reply is on the wire.
            let (h, m, e) = inner.cache_totals();
            (stats_reply(inner.metrics.snapshot(h, m, e)), true)
        }
        // Client-bound messages arriving at the server.
        other => (
            Message::Error {
                code: ErrorCode::BadRequest,
                detail: format!("unexpected message: {other:?}"),
            },
            false,
        ),
    }
}

/// The shard partitioning exported for `name`: the store's real plans
/// when it has them, else one synthesized by sample count. `None` when
/// the dataset does not exist.
fn dataset_plans(inner: &Inner, name: &str, per_shard: u64) -> Option<Vec<sciml_store::ShardPlan>> {
    let ds = inner.datasets.get(name)?;
    Some(match &ds.plans {
        Some(plans) => plans.clone(),
        None => {
            let per = if per_shard == 0 {
                DEFAULT_PLAN_PER_SHARD
            } else {
                per_shard
            };
            plan_by_count(ds.cache.len() as u64, per)
        }
    })
}

fn unknown_dataset(name: &str) -> Message {
    Message::Error {
        code: ErrorCode::UnknownDataset,
        detail: format!("no dataset named '{name}'"),
    }
}
