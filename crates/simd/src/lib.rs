//! Runtime CPU-feature probe and SIMD dispatch support.
//!
//! The decode hot loops (CosmoFlow LUT gather, DeepCAM differential
//! decode, bulk F32↔F16 conversion) each carry hand-written intrinsics
//! paths plus a canonical scalar fallback. This crate is the shared,
//! dependency-free substrate they dispatch through:
//!
//! * [`detected_level`] — a cached, one-time probe of what the host CPU
//!   supports (`is_x86_feature_detected!` on x86-64, NEON is baseline on
//!   aarch64).
//! * `SCIML_SIMD=scalar|sse42|avx2|neon` — an environment override so
//!   tests and CI can force every tier. Forcing a tier the host cannot
//!   run clamps to [`SimdLevel::Scalar`] (never an illegal-instruction
//!   crash); an unrecognized value is ignored.
//! * [`force`] — an in-process override (RAII guard) for proptests and
//!   benches that iterate tiers inside one process. It is a process
//!   global rather than a thread-local so forced tiers propagate into
//!   spawned decode workers; this is sound because every tier is
//!   bit-exact, so concurrent tests can only change *which* kernel runs,
//!   never what it produces.
//! * [`record`] / [`dispatch_counts`] — relaxed per-(kernel, level)
//!   counters so `sciml fetch --stats` and the Prometheus scrape can
//!   show which path actually ran (`codec.simd.*`).
//!
//! The public façade for tools lives in `sciml_platform::cpu`; kernels
//! in `sciml-half` and `sciml-codec` link this crate directly because
//! the platform crate sits *above* them in the dependency graph.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// An ISA tier a kernel can be compiled for. Ordered from least to most
/// capable within an architecture; `Neon` is the aarch64 tier and never
/// coexists with the x86 tiers on one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Portable scalar Rust — the canonical semantics every vector path
    /// must match bit for bit.
    Scalar,
    /// x86-64 SSE4.2 (uses SSE2..SSE4.1 integer ops, no AVX state).
    Sse42,
    /// x86-64 AVX2 + F16C (hardware F32↔F16 conversion).
    Avx2,
    /// aarch64 Advanced SIMD (baseline on all aarch64 hosts).
    Neon,
}

/// All tiers, in probe order (most capable last).
pub const ALL_LEVELS: [SimdLevel; 4] = [
    SimdLevel::Scalar,
    SimdLevel::Sse42,
    SimdLevel::Avx2,
    SimdLevel::Neon,
];

impl SimdLevel {
    /// Stable lowercase name (the `SCIML_SIMD` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse42 => "sse42",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    /// Parses a `SCIML_SIMD` value (case-insensitive).
    pub fn from_name(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdLevel::Scalar),
            "sse42" | "sse4.2" | "sse4" => Some(SimdLevel::Sse42),
            "avx2" => Some(SimdLevel::Avx2),
            "neon" => Some(SimdLevel::Neon),
            _ => None,
        }
    }

    /// Dense index for counter tables.
    pub fn index(self) -> usize {
        match self {
            SimdLevel::Scalar => 0,
            SimdLevel::Sse42 => 1,
            SimdLevel::Avx2 => 2,
            SimdLevel::Neon => 3,
        }
    }

    fn from_index(i: usize) -> Option<Self> {
        ALL_LEVELS.get(i).copied()
    }
}

/// One-time hardware probe. The `avx2` tier additionally requires F16C
/// (for the hardware F32↔F16 conversions) and SSE4.2; every AVX2 part
/// shipped with both, but a hypervisor can mask them independently, so
/// we check rather than assume.
fn probe() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("f16c")
            && std::arch::is_x86_feature_detected!("sse4.2")
        {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse4.2") {
            return SimdLevel::Sse42;
        }
        SimdLevel::Scalar
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// The most capable tier the host CPU can run (cached).
pub fn detected_level() -> SimdLevel {
    static DETECTED: OnceLock<SimdLevel> = OnceLock::new();
    *DETECTED.get_or_init(probe)
}

/// Whether the host can execute kernels of this tier.
pub fn is_supported(level: SimdLevel) -> bool {
    match level {
        SimdLevel::Scalar => true,
        // On each architecture the probe returns the top supported tier
        // and the tiers below it are implied (AVX2 probe requires
        // SSE4.2; NEON is baseline aarch64).
        SimdLevel::Sse42 => matches!(detected_level(), SimdLevel::Sse42 | SimdLevel::Avx2),
        SimdLevel::Avx2 => detected_level() == SimdLevel::Avx2,
        SimdLevel::Neon => detected_level() == SimdLevel::Neon,
    }
}

/// All tiers the host can execute, least capable first (always starts
/// with `Scalar`). This is what the CI `simd-matrix` stage iterates.
pub fn supported_levels() -> Vec<SimdLevel> {
    ALL_LEVELS
        .iter()
        .copied()
        .filter(|&l| is_supported(l))
        .collect()
}

/// Name of the tier-override environment variable.
pub const SIMD_ENV: &str = "SCIML_SIMD";

/// Raw `SCIML_SIMD` value as seen at first use, if any (cached; later
/// env mutations are deliberately ignored so dispatch is stable).
pub fn env_request() -> Option<&'static str> {
    static RAW: OnceLock<Option<String>> = OnceLock::new();
    RAW.get_or_init(|| std::env::var(SIMD_ENV).ok()).as_deref()
}

/// The tier `SCIML_SIMD` resolves to, if the variable is set to a valid
/// name. A valid but unsupported tier clamps to `Scalar` (deterministic
/// and safe, never an illegal instruction); an unrecognized value yields
/// `None` and detection wins.
pub fn env_level() -> Option<SimdLevel> {
    static PARSED: OnceLock<Option<SimdLevel>> = OnceLock::new();
    *PARSED.get_or_init(|| {
        let lvl = SimdLevel::from_name(env_request()?)?;
        Some(if is_supported(lvl) {
            lvl
        } else {
            SimdLevel::Scalar
        })
    })
}

// In-process override: 0 = none, otherwise level index + 1. A process
// global (not a thread-local) so a forced tier reaches decode threads
// spawned by rayon or the bench harness.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// RAII guard restoring the previous in-process override on drop.
pub struct ForceGuard {
    prev: u8,
}

impl Drop for ForceGuard {
    fn drop(&mut self) {
        FORCED.store(self.prev, Ordering::Relaxed);
    }
}

/// Forces the active tier for the whole process until the guard drops
/// (`None` clears a previous force). Unsupported tiers clamp to
/// `Scalar`. Intended for tests and benches that iterate tiers.
pub fn force(level: Option<SimdLevel>) -> ForceGuard {
    let val = match level {
        None => 0,
        Some(l) => {
            let l = if is_supported(l) {
                l
            } else {
                SimdLevel::Scalar
            };
            l.index() as u8 + 1
        }
    };
    let prev = FORCED.swap(val, Ordering::Relaxed);
    ForceGuard { prev }
}

/// The tier kernels should dispatch to *right now*: in-process force,
/// else `SCIML_SIMD`, else hardware detection.
#[inline]
pub fn active_level() -> SimdLevel {
    let forced = FORCED.load(Ordering::Relaxed);
    if forced != 0 {
        if let Some(l) = SimdLevel::from_index(forced as usize - 1) {
            return l;
        }
    }
    match env_level() {
        Some(l) => l,
        None => detected_level(),
    }
}

/// [`active_level`] clamped to the tiers this *architecture* has
/// kernels for — e.g. a (clamp-bypassing) forced `neon` on x86-64
/// resolves to `Scalar` here. Kernel dispatch sites use this so the
/// level they record is the level that actually ran.
#[inline]
pub fn arch_level() -> SimdLevel {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => SimdLevel::Avx2,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse42 => SimdLevel::Sse42,
        #[cfg(target_arch = "aarch64")]
        SimdLevel::Neon => SimdLevel::Neon,
        _ => SimdLevel::Scalar,
    }
}

/// A dispatched kernel family, for attribution counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// CosmoFlow dense-LUT gather (per chunk).
    CosmoGather,
    /// DeepCAM per-line differential decode (per line).
    DeepcamLine,
    /// Bulk F32→F16 narrowing (per slice call).
    HalfNarrow,
    /// Bulk F16→F32 widening (per slice call).
    HalfWiden,
}

/// All kernel families, in counter-table order.
pub const ALL_KERNELS: [Kernel; 4] = [
    Kernel::CosmoGather,
    Kernel::DeepcamLine,
    Kernel::HalfNarrow,
    Kernel::HalfWiden,
];

impl Kernel {
    /// Stable metric-name segment (`codec.simd.<kernel>.<level>`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::CosmoGather => "cosmo_gather",
            Kernel::DeepcamLine => "deepcam_line",
            Kernel::HalfNarrow => "half_narrow",
            Kernel::HalfWiden => "half_widen",
        }
    }

    fn index(self) -> usize {
        match self {
            Kernel::CosmoGather => 0,
            Kernel::DeepcamLine => 1,
            Kernel::HalfNarrow => 2,
            Kernel::HalfWiden => 3,
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static DISPATCH: [[AtomicU64; 4]; 4] = [[ZERO; 4], [ZERO; 4], [ZERO; 4], [ZERO; 4]];

/// Records one dispatch of `kernel` through the `level` path. Relaxed;
/// a few nanoseconds against kernels that run for microseconds.
#[inline]
pub fn record(kernel: Kernel, level: SimdLevel) {
    DISPATCH[kernel.index()][level.index()].fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of every (kernel, level) dispatch count since process start.
pub fn dispatch_counts() -> Vec<(Kernel, SimdLevel, u64)> {
    let mut out = Vec::with_capacity(16);
    for &k in &ALL_KERNELS {
        for &l in &ALL_LEVELS {
            out.push((k, l, DISPATCH[k.index()][l.index()].load(Ordering::Relaxed)));
        }
    }
    out
}

/// Total dispatches recorded for one level, summed over kernels.
pub fn level_total(level: SimdLevel) -> u64 {
    ALL_KERNELS
        .iter()
        .map(|k| DISPATCH[k.index()][level.index()].load(Ordering::Relaxed))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for &l in &ALL_LEVELS {
            assert_eq!(SimdLevel::from_name(l.name()), Some(l));
        }
        assert_eq!(SimdLevel::from_name("AVX2"), Some(SimdLevel::Avx2));
        assert_eq!(SimdLevel::from_name("sse4.2"), Some(SimdLevel::Sse42));
        assert_eq!(SimdLevel::from_name("mmx"), None);
    }

    #[test]
    fn scalar_is_always_supported_and_detected_is_supported() {
        assert!(is_supported(SimdLevel::Scalar));
        assert!(is_supported(detected_level()));
        let levels = supported_levels();
        assert_eq!(levels.first(), Some(&SimdLevel::Scalar));
        assert!(levels.contains(&detected_level()));
    }

    #[test]
    fn force_guard_overrides_and_restores() {
        let baseline = active_level();
        {
            let _g = force(Some(SimdLevel::Scalar));
            assert_eq!(active_level(), SimdLevel::Scalar);
        }
        assert_eq!(active_level(), baseline);
    }

    #[test]
    fn forcing_unsupported_clamps_to_scalar() {
        // On any single host at least one tier is unsupported (Neon on
        // x86, Avx2 on aarch64).
        let unsupported = ALL_LEVELS.iter().copied().find(|&l| !is_supported(l));
        if let Some(l) = unsupported {
            let _g = force(Some(l));
            assert_eq!(active_level(), SimdLevel::Scalar);
        }
    }

    #[test]
    fn dispatch_counters_accumulate() {
        let before = level_total(SimdLevel::Scalar);
        record(Kernel::HalfNarrow, SimdLevel::Scalar);
        record(Kernel::CosmoGather, SimdLevel::Scalar);
        assert!(level_total(SimdLevel::Scalar) >= before + 2);
        let counts = dispatch_counts();
        assert_eq!(counts.len(), 16);
    }
}
