//! Consistent-hash placement of packed shards across serve nodes.
//!
//! Cluster mode spreads a store's `.sshard` shards over N serving
//! nodes so a training fleet fans its fetches out instead of funnelling
//! every node through one server. Placement must be *stable* — adding
//! or removing a node may move only the shards adjacent to it on the
//! ring, never reshuffle the world — so the classic consistent-hash
//! ring is used:
//!
//! * every node contributes `vnodes` virtual points, hashed from
//!   `"{addr}#{i}"` with FNV-1a 64;
//! * a shard hashes its id (`"shard-{id}"`) onto the ring and is owned
//!   by the first `replication` *distinct* nodes found walking
//!   clockwise from that point (primary first);
//! * ties and wrap-around follow the usual sorted-ring rules.
//!
//! The hash is fixed (FNV-1a 64) and the walk is deterministic, so any
//! client or server that knows the node list computes the identical
//! placement — the cluster manifest on the wire is a convenience, not
//! a source of truth.

use crate::manifest::ShardPlan;

/// Default number of virtual points each node contributes to the ring.
pub const DEFAULT_VNODES: usize = 64;

/// FNV-1a 64-bit hash — tiny, dependency-free, and stable across
/// platforms and releases (placement must never change under a
/// compiler or std upgrade).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Ring position hash: FNV-1a 64 followed by a 64-bit avalanche
/// finalizer (MurmurHash3's fmix64). Raw FNV-1a barely stirs the high
/// bits for short, similar keys (`"host:9000#0"`, `"host:9000#1"`, …),
/// which collapses every virtual point onto one arc of the ring; the
/// finalizer restores uniformity while keeping the function fixed and
/// dependency-free.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    let mut h = fnv1a64(bytes);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A consistent-hash ring over a fixed node list.
///
/// Nodes are identified by their index into the list handed to
/// [`HashRing::new`]; callers keep the list (of addresses) alongside.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted virtual points: (ring position, node index).
    points: Vec<(u64, u16)>,
    nodes: usize,
}

impl HashRing {
    /// Builds a ring with `vnodes` virtual points per node. Node
    /// identity is the string itself (normally `host:port`), so two
    /// rings built from the same list are identical.
    pub fn new(nodes: &[String], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (idx, node) in nodes.iter().enumerate() {
            for v in 0..vnodes {
                let key = format!("{node}#{v}");
                points.push((ring_hash(key.as_bytes()), idx as u16));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            nodes: nodes.len(),
        }
    }

    /// Number of distinct nodes on the ring.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The ordered replica set for `key`: the first `replicas`
    /// *distinct* nodes clockwise from the key's ring position,
    /// primary first. Returns fewer entries than requested when the
    /// ring has fewer distinct nodes; empty when the ring is empty.
    pub fn place(&self, key: &[u8], replicas: usize) -> Vec<u16> {
        let want = replicas.clamp(1, self.nodes.max(1));
        let mut out = Vec::with_capacity(want);
        if self.points.is_empty() {
            return out;
        }
        let h = ring_hash(key);
        let start = self.points.partition_point(|&(pos, _)| pos < h);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// Replica set for a shard id (the key every sciml component uses:
    /// `"shard-{id}"`), primary first.
    pub fn place_shard(&self, shard_id: u32, replicas: usize) -> Vec<u16> {
        let key = format!("shard-{shard_id}");
        self.place(key.as_bytes(), replicas)
    }
}

/// One shard's computed placement: the plan plus its ordered replica
/// set (indices into the cluster's node list, primary first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// The shard being placed.
    pub plan: ShardPlan,
    /// Node indices serving this shard, primary first. Always
    /// non-empty for a non-empty node list, and its entries are
    /// distinct.
    pub replicas: Vec<u16>,
}

/// A full cluster placement: node addresses, the replication factor
/// actually achieved, and one [`ShardAssignment`] per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPlan {
    /// Node addresses (`host:port`), in ring-identity order.
    pub nodes: Vec<String>,
    /// Replication factor (clamped to the node count).
    pub replication: u16,
    /// Per-shard placement, in `plans` order.
    pub shards: Vec<ShardAssignment>,
}

impl ClusterPlan {
    /// Computes the placement of `plans` across `nodes` with the given
    /// replication factor using [`DEFAULT_VNODES`] virtual points.
    pub fn assign(plans: &[ShardPlan], nodes: &[String], replication: u16) -> ClusterPlan {
        Self::assign_with_vnodes(plans, nodes, replication, DEFAULT_VNODES)
    }

    /// [`ClusterPlan::assign`] with an explicit virtual-point count
    /// (placement changes with `vnodes`; all members of a cluster must
    /// agree on it).
    pub fn assign_with_vnodes(
        plans: &[ShardPlan],
        nodes: &[String],
        replication: u16,
        vnodes: usize,
    ) -> ClusterPlan {
        let replication = (replication.max(1) as usize).min(nodes.len().max(1)) as u16;
        let ring = HashRing::new(nodes, vnodes);
        let shards = plans
            .iter()
            .map(|p| ShardAssignment {
                plan: *p,
                replicas: ring.place_shard(p.id, replication as usize),
            })
            .collect();
        ClusterPlan {
            nodes: nodes.to_vec(),
            replication,
            shards,
        }
    }

    /// Validates internal consistency: non-empty node list, every
    /// replica index in range, replica sets distinct and exactly
    /// `replication` long. Returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("cluster has no nodes".to_string());
        }
        let mut seen = std::collections::BTreeSet::new();
        for node in &self.nodes {
            if node.is_empty() {
                return Err("empty node address".to_string());
            }
            if !seen.insert(node) {
                return Err(format!("duplicate node address {node}"));
            }
        }
        if self.replication == 0 || self.replication as usize > self.nodes.len() {
            return Err(format!(
                "replication {} out of range for {} nodes",
                self.replication,
                self.nodes.len()
            ));
        }
        for a in &self.shards {
            if a.replicas.len() != self.replication as usize {
                return Err(format!(
                    "shard {} has {} replicas, expected {}",
                    a.plan.id,
                    a.replicas.len(),
                    self.replication
                ));
            }
            let mut distinct = std::collections::BTreeSet::new();
            for &r in &a.replicas {
                if r as usize >= self.nodes.len() {
                    return Err(format!(
                        "shard {} replica index {r} out of range",
                        a.plan.id
                    ));
                }
                if !distinct.insert(r) {
                    return Err(format!("shard {} repeats replica {r}", a.plan.id));
                }
            }
        }
        Ok(())
    }

    /// Per-node load: (primary shard count, total replica shard count,
    /// total replica bytes), indexed like `nodes`.
    pub fn balance(&self) -> Vec<NodeLoad> {
        let mut out = vec![NodeLoad::default(); self.nodes.len()];
        for a in &self.shards {
            for (i, &r) in a.replicas.iter().enumerate() {
                if let Some(load) = out.get_mut(r as usize) {
                    if i == 0 {
                        load.primaries += 1;
                    }
                    load.shards += 1;
                    load.bytes += a.plan.bytes;
                }
            }
        }
        out
    }

    /// Replica set (primary first) for the shard covering global
    /// sample `index`, or `None` when no shard covers it.
    pub fn locate(&self, index: u64) -> Option<&ShardAssignment> {
        self.shards
            .iter()
            .find(|a| index >= a.plan.first && index < a.plan.first + a.plan.count)
    }
}

/// Aggregate load carried by one node under a [`ClusterPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Shards this node is primary for.
    pub primaries: u64,
    /// Shards this node holds a replica of (including primaries).
    pub shards: u64,
    /// Total bytes of those shards.
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::plan_by_count;

    fn nodes(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // ring_hash is fnv1a64 + fmix64; pin its value so placement
        // can never drift silently between releases.
        assert_eq!(ring_hash(b""), 0xefd0_1f60_ba99_2926);
        assert_eq!(ring_hash(b"a"), 0x82a2_a958_a9be_ce5b);
    }

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let ns = nodes(5);
        let ring = HashRing::new(&ns, 64);
        for id in 0..200u32 {
            let a = ring.place_shard(id, 3);
            let b = ring.place_shard(id, 3);
            assert_eq!(a, b);
            assert_eq!(a.len(), 3);
            let set: std::collections::BTreeSet<_> = a.iter().collect();
            assert_eq!(set.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn replication_clamped_to_node_count() {
        let ns = nodes(2);
        let ring = HashRing::new(&ns, 16);
        let r = ring.place_shard(7, 5);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn removing_a_node_moves_only_its_shards() {
        // The consistent-hash property: shards whose replica set did
        // not include the removed node keep their primary.
        let five = nodes(5);
        let four: Vec<String> = five[..4].to_vec();
        let ring5 = HashRing::new(&five, 64);
        let ring4 = HashRing::new(&four, 64);
        let mut moved = 0;
        for id in 0..500u32 {
            let before = ring5.place_shard(id, 1)[0];
            let after = ring4.place_shard(id, 1)[0];
            if before != 4 {
                assert_eq!(before, after, "shard {id} moved without cause");
            } else {
                moved += 1;
            }
        }
        // The removed node owned roughly 1/5 of the keys.
        assert!(moved > 0, "node 4 owned no shards at all");
        assert!(moved < 250, "node 4 owned implausibly many shards");
    }

    #[test]
    fn balance_is_roughly_even() {
        let ns = nodes(4);
        let plans = plan_by_count(4096, 16); // 256 shards
        let plan = ClusterPlan::assign(&plans, &ns, 2);
        plan.validate().expect("valid placement");
        let loads = plan.balance();
        let total: u64 = loads.iter().map(|l| l.primaries).sum();
        assert_eq!(total, 256);
        for l in &loads {
            // With 64 vnodes the worst node should stay within a few x
            // of the mean (64 primaries); this bound is loose on
            // purpose — it guards gross brokenness, not variance.
            assert!(l.primaries > 10, "starved node: {loads:?}");
            assert!(l.primaries < 200, "overloaded node: {loads:?}");
        }
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let plans = plan_by_count(64, 16);
        let mut plan = ClusterPlan::assign(&plans, &nodes(3), 2);
        assert!(plan.validate().is_ok());
        plan.shards[0].replicas[1] = 9; // out of range
        assert!(plan.validate().is_err());
        plan.shards[0].replicas[1] = plan.shards[0].replicas[0]; // repeated
        assert!(plan.validate().is_err());
        let dup = ClusterPlan {
            nodes: vec!["a:1".into(), "a:1".into()],
            replication: 1,
            shards: Vec::new(),
        };
        assert!(dup.validate().is_err());
    }

    #[test]
    fn locate_finds_covering_shard() {
        let plans = plan_by_count(100, 32);
        let plan = ClusterPlan::assign(&plans, &nodes(3), 2);
        assert_eq!(plan.locate(0).map(|a| a.plan.id), Some(0));
        assert_eq!(plan.locate(33).map(|a| a.plan.id), Some(1));
        assert_eq!(plan.locate(99).map(|a| a.plan.id), Some(3));
        assert!(plan.locate(100).is_none());
    }
}
