//! sciml-store — packed shard store with background node-local staging.
//!
//! The paper's *staged* experiments copy the dataset from the shared
//! parallel file system onto node-local NVMe once, then train out of
//! the local copy. The per-file [`DirSource`](sciml_pipeline::source::DirSource)
//! pays one inode + one `open` per sample and keeps nothing across
//! process restarts; this crate replaces that with a persistent,
//! integrity-checked on-disk format and an asynchronous stager:
//!
//! * [`shard`] — the `.sshard` packed shard format: a versioned header,
//!   concatenated sample payloads, and a footer index carrying each
//!   sample's offset / length / CRC-32 (the same CRC as
//!   `sciml_compress::crc32`). Readers use positioned reads, so
//!   concurrent fetches share one file descriptor without a seek lock.
//!   Optional per-shard gzip compresses every payload in the shard.
//! * [`manifest`] — the store manifest (`store.manifest`, one line per
//!   shard: sample range, byte size, whole-file CRC) and the staging
//!   journal (`staging.journal`, append-only record of completed
//!   shards, CRC-verified on resume).
//! * [`source`] — [`ShardSource`], a [`SampleSource`](sciml_pipeline::SampleSource) over a packed
//!   store directory, and [`StagingSource`], which serves
//!   already-staged shards from the local copy while transparently
//!   falling through to the backing source for the rest.
//! * [`stager`] — the background staging manager: a worker pool that
//!   copies shard-sized sample ranges from *any* backing
//!   `SampleSource` (local dir, or a `RemoteSource` over the serving
//!   tier) into a node-local staging directory, with bounded in-flight
//!   bytes, retry-with-backoff on transient errors, and a resumable
//!   journal so a restarted job never re-fetches a completed shard.
//!
//! Every corruption — truncated shard, corrupted footer, bit-flipped
//! payload, vanished backing directory — surfaces as a typed
//! [`StoreError`], never a panic.

#![deny(missing_docs)]

pub mod cluster;
pub mod manifest;
pub mod shard;
pub mod source;
pub mod stager;

pub use cluster::{ClusterPlan, HashRing, NodeLoad, ShardAssignment};
pub use manifest::{ShardMeta, ShardPlan, StagingJournal, StoreManifest, MANIFEST_FILE};
pub use shard::{
    pack_store, write_shard, EncodingChoice, EncodingCounts, PackConfig, PayloadEncoding,
    ShardReader, SHARD_EXT,
};
pub use source::{ShardSource, StagingSource};
pub use stager::{Stager, StagerConfig, StagingProgress};

use std::fmt;
use std::path::PathBuf;

/// Typed failures of the shard store and staging manager.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A magic number did not match (`where` names the structure).
    BadMagic(&'static str),
    /// Unsupported format version.
    BadVersion(u16),
    /// File ended before the structure was complete.
    Truncated(&'static str),
    /// The footer index failed its CRC check.
    IndexCorrupt {
        /// CRC computed over the stored index bytes.
        computed: u32,
        /// CRC recorded in the footer trailer.
        stored: u32,
    },
    /// A sample payload failed its CRC check.
    SampleCorrupt {
        /// Sample position within the shard.
        sample: usize,
        /// CRC computed over the stored payload.
        computed: u32,
        /// CRC recorded in the footer index.
        stored: u32,
    },
    /// A structural invariant of the format was violated.
    Malformed(&'static str),
    /// The store manifest or staging journal failed to parse.
    Manifest(String),
    /// Sample index beyond the store length.
    OutOfRange {
        /// Requested sample index.
        idx: usize,
        /// Number of samples in the store.
        len: usize,
    },
    /// A gzip-compressed payload failed to decompress.
    Compression(sciml_compress::Error),
    /// A pack-compressed payload failed to decode.
    Pack(sciml_pack::PackError),
    /// A shard file named by the manifest is missing.
    MissingShard(PathBuf),
    /// The staging retry budget was exhausted; carries the last error.
    RetriesExhausted(Box<StoreError>),
    /// The backing source failed while staging or falling through.
    Backing(sciml_pipeline::PipelineError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic(what) => write!(f, "bad magic in {what}"),
            StoreError::BadVersion(v) => write!(f, "unsupported shard format version {v}"),
            StoreError::Truncated(what) => write!(f, "truncated {what}"),
            StoreError::IndexCorrupt { computed, stored } => write!(
                f,
                "footer index CRC mismatch (computed {computed:#010x}, stored {stored:#010x})"
            ),
            StoreError::SampleCorrupt {
                sample,
                computed,
                stored,
            } => write!(
                f,
                "sample {sample} payload CRC mismatch (computed {computed:#010x}, stored {stored:#010x})"
            ),
            StoreError::Malformed(what) => write!(f, "malformed shard: {what}"),
            StoreError::Manifest(what) => write!(f, "manifest error: {what}"),
            StoreError::OutOfRange { idx, len } => {
                write!(f, "sample index {idx} out of range (store has {len})")
            }
            StoreError::Compression(e) => write!(f, "shard decompression failed: {e}"),
            StoreError::Pack(e) => write!(f, "shard pack decode failed: {e}"),
            StoreError::MissingShard(p) => write!(f, "shard file missing: {}", p.display()),
            StoreError::RetriesExhausted(e) => write!(f, "staging retries exhausted: {e}"),
            StoreError::Backing(e) => write!(f, "backing source error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Compression(e) => Some(e),
            StoreError::Pack(e) => Some(e),
            StoreError::RetriesExhausted(e) => Some(e.as_ref()),
            StoreError::Backing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<sciml_compress::Error> for StoreError {
    fn from(e: sciml_compress::Error) -> Self {
        StoreError::Compression(e)
    }
}

impl From<sciml_pack::PackError> for StoreError {
    fn from(e: sciml_pack::PackError) -> Self {
        StoreError::Pack(e)
    }
}

impl From<StoreError> for sciml_pipeline::PipelineError {
    fn from(e: StoreError) -> Self {
        match e {
            // Don't double-wrap: a fall-through failure is the backing
            // source's own pipeline error.
            StoreError::Backing(inner) => inner,
            other => sciml_pipeline::PipelineError::Storage(Box::new(other)),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_the_failure() {
        assert!(StoreError::BadMagic("shard header")
            .to_string()
            .contains("shard header"));
        assert!(StoreError::OutOfRange { idx: 9, len: 3 }
            .to_string()
            .contains('9'));
        let e = StoreError::SampleCorrupt {
            sample: 2,
            computed: 1,
            stored: 2,
        };
        assert!(e.to_string().contains("sample 2"));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error as _;
        let io = StoreError::Io(std::io::Error::other("disk gone"));
        assert!(io.source().unwrap().to_string().contains("disk gone"));
        let wrapped = StoreError::RetriesExhausted(Box::new(StoreError::Truncated("shard")));
        assert!(wrapped.source().unwrap().to_string().contains("shard"));
        assert!(StoreError::BadVersion(9).source().is_none());
    }

    #[test]
    fn conversion_to_pipeline_error_keeps_type() {
        let e: sciml_pipeline::PipelineError = StoreError::BadVersion(7).into();
        assert!(e.to_string().contains("version 7"));
        // Backing errors unwrap instead of double-wrapping.
        let backing = StoreError::Backing(sciml_pipeline::PipelineError::Timeout("fetch"));
        let e: sciml_pipeline::PipelineError = backing.into();
        assert!(matches!(e, sciml_pipeline::PipelineError::Timeout(_)));
    }
}
