//! Store manifest and staging journal: the two small text files that
//! make a packed store self-describing and staging resumable.
//!
//! Both are deliberately line-oriented ASCII — greppable on a login
//! node, diffable in CI, and parseable without a serde dependency.
//!
//! **Store manifest** (`store.manifest`), written once at pack time:
//!
//! ```text
//! sciml-store v1
//! shard 0 shard_000000.sshard 0 32 81920 9a0b1c2d
//! shard 1 shard_000001.sshard 32 32 80104 11223344
//! ```
//!
//! **Staging journal** (`staging.journal`), appended as shards
//! complete; replayed on restart, and every claimed shard is
//! CRC-verified against the file on disk before being trusted:
//!
//! ```text
//! sciml-staging v1
//! done 1 11223344
//! done 0 9a0b1c2d
//! ```

use crate::shard::EncodingChoice;
use crate::{Result, StoreError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the store manifest inside a packed store directory.
pub const MANIFEST_FILE: &str = "store.manifest";

/// File name of the staging journal inside a staging directory.
pub const JOURNAL_FILE: &str = "staging.journal";

const MANIFEST_HEADER: &str = "sciml-store v1";
const JOURNAL_HEADER: &str = "sciml-staging v1";

/// One packed shard as recorded in the store manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard id (dense, ascending).
    pub id: u32,
    /// File name relative to the store directory (no spaces).
    pub file: String,
    /// Global index of the shard's first sample.
    pub first: u64,
    /// Number of samples in the shard.
    pub count: u64,
    /// Total size of the shard file in bytes.
    pub bytes: u64,
    /// CRC-32 of the entire shard file.
    pub crc32: u32,
    /// Encoding policy the shard was packed with (the per-entry truth
    /// lives in the shard's footer index; this is what a stager should
    /// mirror). Legacy 7-field manifest lines parse as
    /// [`EncodingChoice::Auto`].
    pub encoding: EncodingChoice,
}

impl ShardMeta {
    /// The staging-plan view of this shard (drops file name and CRC,
    /// which are properties of one particular packed copy).
    pub fn plan(&self) -> ShardPlan {
        ShardPlan {
            id: self.id,
            first: self.first,
            count: self.count,
            bytes: self.bytes,
            encoding: self.encoding,
        }
    }
}

/// A shard-sized range of samples to stage: what travels over the wire
/// when a server exports its shard partitioning. Unlike [`ShardMeta`]
/// it carries no file name or CRC — the staging node packs its own
/// local shard files and computes its own checksums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard id (dense, ascending).
    pub id: u32,
    /// Global index of the shard's first sample.
    pub first: u64,
    /// Number of samples in the shard.
    pub count: u64,
    /// Approximate shard size in bytes (0 when unknown) — used to
    /// bound in-flight staging bytes, not for integrity.
    pub bytes: u64,
    /// Encoding policy of the exporting store, so a staging node can
    /// mirror it. [`EncodingChoice::Auto`] when unknown (legacy
    /// manifests, synthesized plans, pre-v4 serve protocol).
    pub encoding: EncodingChoice,
}

/// Synthesizes a shard partitioning for a source that has no manifest:
/// consecutive runs of `per_shard` samples.
pub fn plan_by_count(total_samples: u64, per_shard: u64) -> Vec<ShardPlan> {
    let per_shard = per_shard.max(1);
    let mut plans = Vec::new();
    let mut first = 0u64;
    let mut id = 0u32;
    while first < total_samples {
        let count = per_shard.min(total_samples - first);
        plans.push(ShardPlan {
            id,
            first,
            count,
            bytes: 0,
            encoding: EncodingChoice::Auto,
        });
        first += count;
        id += 1;
    }
    plans
}

/// The manifest of a packed store: every shard, in id order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreManifest {
    /// Shards in ascending id / first-sample order.
    pub shards: Vec<ShardMeta>,
}

impl StoreManifest {
    /// Total number of samples across all shards.
    pub fn total_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.count).sum()
    }

    /// Total bytes across all shard files.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// The staging plan for this manifest.
    pub fn plans(&self) -> Vec<ShardPlan> {
        self.shards.iter().map(ShardMeta::plan).collect()
    }

    /// Shard holding global sample `idx`, with the offset inside it.
    pub fn locate(&self, idx: u64) -> Option<(&ShardMeta, u64)> {
        // Shards are sorted by `first`; binary-search the containing one.
        let pos = self
            .shards
            .partition_point(|s| s.first + s.count <= idx)
            .min(self.shards.len().saturating_sub(1));
        let shard = self.shards.get(pos)?;
        if idx >= shard.first && idx < shard.first + shard.count {
            Some((shard, idx - shard.first))
        } else {
            None
        }
    }

    /// Serializes to the manifest text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from(MANIFEST_HEADER);
        out.push('\n');
        for s in &self.shards {
            out.push_str(&format!(
                "shard {} {} {} {} {} {:08x} {}\n",
                s.id, s.file, s.first, s.count, s.bytes, s.crc32, s.encoding
            ));
        }
        out
    }

    /// Parses the manifest text format, validating structure: header
    /// line, dense ascending ids, contiguous sample ranges from 0.
    pub fn parse(text: &str) -> Result<Self> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim() == MANIFEST_HEADER => {}
            Some(other) => {
                return Err(StoreError::Manifest(format!(
                    "bad manifest header: {other:?}"
                )))
            }
            None => return Err(StoreError::Manifest("empty manifest".into())),
        }
        let mut shards = Vec::new();
        let mut expect_first = 0u64;
        for (lineno, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let err =
                |what: &str| StoreError::Manifest(format!("line {}: {what}: {line:?}", lineno + 2));
            if !(7..=8).contains(&fields.len()) || fields[0] != "shard" {
                return Err(err(
                    "expected `shard ID FILE FIRST COUNT BYTES CRC [ENCODING]`",
                ));
            }
            let id: u32 = fields[1].parse().map_err(|_| err("bad shard id"))?;
            let file = fields[2].to_string();
            let first: u64 = fields[3].parse().map_err(|_| err("bad first index"))?;
            let count: u64 = fields[4].parse().map_err(|_| err("bad sample count"))?;
            let bytes: u64 = fields[5].parse().map_err(|_| err("bad byte size"))?;
            let crc32 = u32::from_str_radix(fields[6], 16).map_err(|_| err("bad crc"))?;
            // 7-field lines predate per-entry encodings; `auto` is the
            // conservative mirror target for such stores.
            let encoding = match fields.get(7) {
                Some(word) => word.parse().map_err(|_| err("bad encoding"))?,
                None => EncodingChoice::Auto,
            };
            if id as usize != shards.len() {
                return Err(err("shard ids must be dense and ascending"));
            }
            if first != expect_first {
                return Err(err("shard sample ranges must be contiguous from 0"));
            }
            if count == 0 {
                return Err(err("empty shard"));
            }
            expect_first = first + count;
            shards.push(ShardMeta {
                id,
                file,
                first,
                count,
                bytes,
                crc32,
                encoding,
            });
        }
        Ok(Self { shards })
    }

    /// Writes the manifest into `dir` as [`MANIFEST_FILE`].
    pub fn write_to(&self, dir: &Path) -> Result<()> {
        fs::write(dir.join(MANIFEST_FILE), self.to_text())?;
        Ok(())
    }

    /// Loads the manifest from `dir`.
    pub fn load_from(dir: &Path) -> Result<Self> {
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::Manifest(format!("no {MANIFEST_FILE} in {}", dir.display()))
            } else {
                StoreError::Io(e)
            }
        })?;
        Self::parse(&text)
    }
}

/// One completed-shard record in the staging journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// Shard id that finished staging.
    pub id: u32,
    /// CRC-32 of the staged shard file, verified on resume.
    pub crc32: u32,
}

/// The append-only staging journal: which shards are already staged.
///
/// Completed shards are appended (and flushed) one line at a time, so a
/// killed stager loses at most the shard it was working on. On resume,
/// [`StagingJournal::replay`] re-verifies every claimed shard file's
/// CRC against disk and silently drops entries that no longer hold —
/// those shards are simply staged again.
#[derive(Debug)]
pub struct StagingJournal {
    path: PathBuf,
    entries: Vec<JournalEntry>,
}

impl StagingJournal {
    /// Serializes entries to the journal text format.
    pub fn to_text(entries: &[JournalEntry]) -> String {
        let mut out = String::from(JOURNAL_HEADER);
        out.push('\n');
        for e in entries {
            out.push_str(&format!("done {} {:08x}\n", e.id, e.crc32));
        }
        out
    }

    /// Parses the journal text format. Unknown or malformed lines are
    /// an error (a corrupt journal must not be half-trusted); an empty
    /// or missing body is fine.
    pub fn parse(text: &str) -> Result<Vec<JournalEntry>> {
        let mut lines = text.lines();
        match lines.next() {
            Some(l) if l.trim() == JOURNAL_HEADER => {}
            Some(other) => {
                return Err(StoreError::Manifest(format!(
                    "bad journal header: {other:?}"
                )))
            }
            None => return Ok(Vec::new()),
        }
        let mut entries = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let err = |what: &str| {
                StoreError::Manifest(format!("journal line {}: {what}: {line:?}", lineno + 2))
            };
            if fields.len() != 3 || fields[0] != "done" {
                return Err(err("expected `done ID CRC`"));
            }
            let id: u32 = fields[1].parse().map_err(|_| err("bad shard id"))?;
            let crc32 = u32::from_str_radix(fields[2], 16).map_err(|_| err("bad crc"))?;
            entries.push(JournalEntry { id, crc32 });
        }
        Ok(entries)
    }

    /// Opens (or creates) the journal in `dir`, replaying any existing
    /// entries. The caller decides which entries to trust via
    /// [`StagingJournal::entries`].
    pub fn open(dir: &Path) -> Result<Self> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let entries = match fs::read_to_string(&path) {
            Ok(text) => Self::parse(&text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::write(&path, format!("{JOURNAL_HEADER}\n"))?;
                Vec::new()
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        Ok(Self { path, entries })
    }

    /// Entries replayed from disk at open time.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Appends one completed-shard record and flushes it to disk.
    pub fn append(&mut self, entry: JournalEntry) -> Result<()> {
        let mut f = fs::OpenOptions::new().append(true).open(&self.path)?;
        writeln!(f, "done {} {:08x}", entry.id, entry.crc32)?;
        f.sync_data()?;
        self.entries.push(entry);
        Ok(())
    }

    /// Verifies each replayed entry against the staged shard files in
    /// `dir` (CRC over the whole file), returning only the entries that
    /// still hold. Missing or corrupt files are dropped — their shards
    /// will be staged again.
    pub fn replay(&self, dir: &Path, file_name: impl Fn(u32) -> String) -> Vec<JournalEntry> {
        self.entries
            .iter()
            .filter(|e| {
                fs::read(dir.join(file_name(e.id)))
                    .map(|bytes| sciml_compress::crc32::crc32(&bytes) == e.crc32)
                    .unwrap_or(false)
            })
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_manifest() -> StoreManifest {
        StoreManifest {
            shards: vec![
                ShardMeta {
                    id: 0,
                    file: "shard_000000.sshard".into(),
                    first: 0,
                    count: 3,
                    bytes: 120,
                    crc32: 0xDEAD_BEEF,
                    encoding: EncodingChoice::Pack,
                },
                ShardMeta {
                    id: 1,
                    file: "shard_000001.sshard".into(),
                    first: 3,
                    count: 2,
                    bytes: 90,
                    crc32: 0x0000_0001,
                    encoding: EncodingChoice::Raw,
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrips() {
        let m = demo_manifest();
        let parsed = StoreManifest::parse(&m.to_text()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.total_samples(), 5);
        assert_eq!(parsed.total_bytes(), 210);
    }

    #[test]
    fn legacy_seven_field_lines_parse_as_auto() {
        let legacy = "sciml-store v1\nshard 0 a.sshard 0 2 10 00000000\n";
        let m = StoreManifest::parse(legacy).unwrap();
        assert_eq!(m.shards[0].encoding, EncodingChoice::Auto);
        let bad = "sciml-store v1\nshard 0 a.sshard 0 2 10 00000000 zstd\n";
        assert!(StoreManifest::parse(bad).is_err());
    }

    #[test]
    fn locate_finds_the_right_shard() {
        let m = demo_manifest();
        assert_eq!(m.locate(0).unwrap().0.id, 0);
        assert_eq!(m.locate(2).unwrap(), (&m.shards[0], 2));
        assert_eq!(m.locate(3).unwrap(), (&m.shards[1], 0));
        assert_eq!(m.locate(4).unwrap().0.id, 1);
        assert!(m.locate(5).is_none());
        assert!(StoreManifest::default().locate(0).is_none());
    }

    #[test]
    fn manifest_rejects_gaps_and_bad_headers() {
        assert!(StoreManifest::parse("nonsense\n").is_err());
        let gap =
            "sciml-store v1\nshard 0 a.sshard 0 2 10 00000000\nshard 1 b.sshard 5 2 10 00000000\n";
        assert!(StoreManifest::parse(gap).is_err());
        let sparse_id = "sciml-store v1\nshard 2 a.sshard 0 2 10 00000000\n";
        assert!(StoreManifest::parse(sparse_id).is_err());
        let empty_shard = "sciml-store v1\nshard 0 a.sshard 0 0 10 00000000\n";
        assert!(StoreManifest::parse(empty_shard).is_err());
    }

    #[test]
    fn journal_roundtrips_and_appends() {
        let dir = std::env::temp_dir().join(format!(
            "sciml_journal_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let mut j = StagingJournal::open(&dir).unwrap();
        assert!(j.entries().is_empty());
        j.append(JournalEntry { id: 3, crc32: 0xAB }).unwrap();
        j.append(JournalEntry { id: 0, crc32: 0xCD }).unwrap();
        let reopened = StagingJournal::open(&dir).unwrap();
        assert_eq!(reopened.entries(), j.entries());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replay_drops_missing_and_corrupt_files() {
        let dir = std::env::temp_dir().join(format!(
            "sciml_replay_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let good = b"shard zero contents".to_vec();
        std::fs::write(dir.join("s0"), &good).unwrap();
        std::fs::write(dir.join("s1"), b"corrupted on disk").unwrap();
        let mut j = StagingJournal::open(&dir).unwrap();
        j.append(JournalEntry {
            id: 0,
            crc32: sciml_compress::crc32::crc32(&good),
        })
        .unwrap();
        j.append(JournalEntry {
            id: 1,
            crc32: 0x1234_5678, // does not match what's on disk
        })
        .unwrap();
        j.append(JournalEntry {
            id: 2,
            crc32: 0, // file never written
        })
        .unwrap();
        let trusted = j.replay(&dir, |id| format!("s{id}"));
        assert_eq!(trusted.len(), 1);
        assert_eq!(trusted[0].id, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_by_count_covers_everything() {
        let plans = plan_by_count(10, 4);
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[2].first, 8);
        assert_eq!(plans[2].count, 2);
        assert_eq!(plans.iter().map(|p| p.count).sum::<u64>(), 10);
        assert!(plan_by_count(0, 4).is_empty());
        // per_shard 0 is clamped, not a panic/infinite loop.
        assert_eq!(plan_by_count(3, 0).len(), 3);
    }
}
