//! The `.sshard` packed shard format.
//!
//! A shard concatenates many samples into one file so a staged dataset
//! costs a handful of inodes instead of one per sample. The layout puts
//! the index in a *footer* so shards can be written in one streaming
//! pass:
//!
//! ```text
//! ┌─────────────────────── header (16 B) ───────────────────────┐
//! │ magic "SSHD" │ version u16 │ flags u16 │ base sample idx u64 │
//! ├──────────────────────────── body ───────────────────────────┤
//! │ sample 0 stored bytes │ sample 1 stored bytes │ …           │
//! ├──────────────── footer index (21 B × count) ────────────────┤
//! │ offset u64 │ stored_len u32 │ raw_len u32 │ crc32 u32 │ enc u8 │
//! ├────────────────────── trailer (24 B) ───────────────────────┤
//! │ index_offset u64 │ count u64 │ index_crc u32 │ magic "SSFT" │
//! └─────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. Format version 2 (current) carries a
//! per-entry encoding byte in the footer index — raw, gzip, or pack
//! ([`sciml_pack`]) — so a single shard can mix encodings: the
//! [`EncodingChoice::Auto`] policy trial-encodes a sample slice of each
//! payload and keeps whichever encoding wins. Version 1 files (20-byte
//! entries, header flag bit 0 = every payload gzipped) are still read.
//! Compression is per-sample (not whole-shard) so positioned reads stay
//! valid, and each entry's CRC-32 covers the *stored* bytes, so
//! integrity checks never need to decompress.

use crate::manifest::{ShardMeta, StoreManifest};
use crate::{Result, StoreError};
use sciml_compress::crc32::{crc32, Crc32};
use sciml_compress::Level;
use sciml_pipeline::source::SampleSource;
use std::fs::{self, File};
use std::io::Read;
use std::path::{Path, PathBuf};

/// File extension of packed shard files.
pub const SHARD_EXT: &str = "sshard";

const HEADER_MAGIC: &[u8; 4] = b"SSHD";
const TRAILER_MAGIC: &[u8; 4] = b"SSFT";
const VERSION_V1: u16 = 1;
const VERSION: u16 = 2;
const FLAG_GZIP: u16 = 1 << 0;
const HEADER_LEN: usize = 16;
const ENTRY_LEN_V1: usize = 20;
const ENTRY_LEN: usize = 21;
const TRAILER_LEN: usize = 24;

/// Bytes of a payload trial-encoded when auto-selecting an encoding.
const TRIAL_SAMPLE_BYTES: usize = 8192;

/// How one stored payload is encoded, as recorded in its footer-index
/// entry (format v2) or implied by the header gzip flag (v1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadEncoding {
    /// Stored bytes are the raw sample bytes.
    Raw,
    /// Stored bytes are a gzip member ([`sciml_compress`]).
    Gzip,
    /// Stored bytes are a packed stream ([`sciml_pack`]).
    Pack,
}

impl PayloadEncoding {
    /// Wire/footer byte for this encoding.
    pub fn as_byte(self) -> u8 {
        match self {
            PayloadEncoding::Raw => 0,
            PayloadEncoding::Gzip => 1,
            PayloadEncoding::Pack => 2,
        }
    }

    /// Parses a footer byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(PayloadEncoding::Raw),
            1 => Some(PayloadEncoding::Gzip),
            2 => Some(PayloadEncoding::Pack),
            _ => None,
        }
    }

    /// Lower-case name, as printed by `verify-store`.
    pub fn name(self) -> &'static str {
        match self {
            PayloadEncoding::Raw => "raw",
            PayloadEncoding::Gzip => "gzip",
            PayloadEncoding::Pack => "pack",
        }
    }
}

/// The encoding policy a store or stager is configured with. Unlike
/// [`PayloadEncoding`] this includes `Auto`, which resolves per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingChoice {
    /// Store payloads uncompressed.
    Raw,
    /// Gzip every payload.
    Gzip,
    /// Pack every payload with [`sciml_pack`].
    Pack,
    /// Trial-encode a sample slice of each payload and keep the winner
    /// (falling back to raw when nothing shrinks it).
    Auto,
}

impl EncodingChoice {
    /// Lower-case name (`raw` / `gzip` / `pack` / `auto`).
    pub fn name(self) -> &'static str {
        match self {
            EncodingChoice::Raw => "raw",
            EncodingChoice::Gzip => "gzip",
            EncodingChoice::Pack => "pack",
            EncodingChoice::Auto => "auto",
        }
    }

    /// Wire byte used by the serve protocol's shard-manifest reply.
    pub fn as_byte(self) -> u8 {
        match self {
            EncodingChoice::Raw => 0,
            EncodingChoice::Gzip => 1,
            EncodingChoice::Pack => 2,
            EncodingChoice::Auto => 3,
        }
    }

    /// Parses a wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(EncodingChoice::Raw),
            1 => Some(EncodingChoice::Gzip),
            2 => Some(EncodingChoice::Pack),
            3 => Some(EncodingChoice::Auto),
            _ => None,
        }
    }
}

impl std::str::FromStr for EncodingChoice {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "raw" => Ok(EncodingChoice::Raw),
            "gzip" => Ok(EncodingChoice::Gzip),
            "pack" => Ok(EncodingChoice::Pack),
            "auto" => Ok(EncodingChoice::Auto),
            other => Err(format!(
                "unknown encoding {other:?} (expected raw|gzip|pack|auto)"
            )),
        }
    }
}

impl std::fmt::Display for EncodingChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-encoding entry counts across a shard or store, as reported by
/// `verify-store`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodingCounts {
    /// Entries stored raw.
    pub raw: usize,
    /// Entries stored gzip-compressed.
    pub gzip: usize,
    /// Entries stored pack-compressed.
    pub pack: usize,
}

impl EncodingCounts {
    /// Adds one entry of `enc`.
    pub fn record(&mut self, enc: PayloadEncoding) {
        match enc {
            PayloadEncoding::Raw => self.raw += 1,
            PayloadEncoding::Gzip => self.gzip += 1,
            PayloadEncoding::Pack => self.pack += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: EncodingCounts) {
        self.raw += other.raw;
        self.gzip += other.gzip;
        self.pack += other.pack;
    }
}

impl std::fmt::Display for EncodingCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "raw={} gzip={} pack={}", self.raw, self.gzip, self.pack)
    }
}

/// Canonical file name for shard `id` inside a store directory.
pub fn shard_file_name(id: u32) -> String {
    format!("shard_{id:06}.{SHARD_EXT}")
}

/// Packing knobs for [`pack_store`].
#[derive(Debug, Clone, Copy)]
pub struct PackConfig {
    /// Flush a shard once its raw payload reaches this size. Every
    /// shard holds at least one sample regardless.
    pub target_shard_bytes: u64,
    /// Payload encoding policy (per entry when [`EncodingChoice::Auto`]).
    pub encoding: EncodingChoice,
    /// Compression effort for gzip-encoded payloads.
    pub level: Level,
}

impl Default for PackConfig {
    fn default() -> Self {
        Self {
            target_shard_bytes: 64 * 1024 * 1024,
            encoding: EncodingChoice::Raw,
            level: Level::Fast,
        }
    }
}

/// Packs `raw` with the element width (1 or 2) that trial-encodes
/// smaller. Packing only fails on an invalid width, which cannot happen
/// here; any error degrades to raw.
fn pack_payload(raw: &[u8]) -> Option<Vec<u8>> {
    let sample = &raw[..raw.len().min(TRIAL_SAMPLE_BYTES)];
    let w1 = sciml_pack::packed_len(sample, 1).ok()?;
    let w2 = sciml_pack::packed_len(sample, 2).ok()?;
    let width = if w2 < w1 { 2 } else { 1 };
    sciml_pack::pack(raw, width).ok()
}

/// Resolves the configured choice for one payload and encodes it.
/// `Auto` trial-encodes a sample slice with gzip and pack, keeps the
/// winner, and falls back to raw when nothing actually shrinks the
/// payload.
fn encode_payload(raw: &[u8], choice: EncodingChoice, level: Level) -> (PayloadEncoding, Vec<u8>) {
    match choice {
        EncodingChoice::Raw => (PayloadEncoding::Raw, raw.to_vec()),
        EncodingChoice::Gzip => (
            PayloadEncoding::Gzip,
            sciml_compress::gzip_compress(raw, level),
        ),
        EncodingChoice::Pack => match pack_payload(raw) {
            Some(p) => (PayloadEncoding::Pack, p),
            None => (PayloadEncoding::Raw, raw.to_vec()),
        },
        EncodingChoice::Auto => {
            let sample = &raw[..raw.len().min(TRIAL_SAMPLE_BYTES)];
            let gz_trial = sciml_compress::gzip_compress(sample, level).len();
            let pk_trial = sciml_pack::packed_len(sample, 1)
                .unwrap_or(usize::MAX)
                .min(sciml_pack::packed_len(sample, 2).unwrap_or(usize::MAX));
            let winner = if pk_trial < gz_trial.min(sample.len()) {
                pack_payload(raw).map(|p| (PayloadEncoding::Pack, p))
            } else if gz_trial < sample.len() {
                Some((
                    PayloadEncoding::Gzip,
                    sciml_compress::gzip_compress(raw, level),
                ))
            } else {
                None
            };
            match winner {
                // The trial slice can flatter an encoding the full
                // payload defeats; keep the entry raw in that case.
                Some((enc, stored)) if stored.len() < raw.len() => (enc, stored),
                _ => (PayloadEncoding::Raw, raw.to_vec()),
            }
        }
    }
}

/// Encodes one shard holding `samples`, whose global indices start at
/// `base`. Returns the complete file image (format version 2).
pub fn encode_shard(
    samples: &[Vec<u8>],
    base: u64,
    encoding: EncodingChoice,
    level: Level,
) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(HEADER_LEN + TRAILER_LEN + samples.iter().map(Vec::len).sum::<usize>());
    out.extend_from_slice(HEADER_MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&base.to_le_bytes());

    let mut index = Vec::with_capacity(samples.len() * ENTRY_LEN);
    for raw in samples {
        let (enc, stored) = encode_payload(raw, encoding, level);
        let offset = out.len() as u64;
        index.extend_from_slice(&offset.to_le_bytes());
        index.extend_from_slice(&(stored.len() as u32).to_le_bytes());
        index.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        index.extend_from_slice(&crc32(&stored).to_le_bytes());
        index.push(enc.as_byte());
        out.extend_from_slice(&stored);
    }

    let index_offset = out.len() as u64;
    let index_crc = crc32(&index);
    out.extend_from_slice(&index);
    out.extend_from_slice(&index_offset.to_le_bytes());
    out.extend_from_slice(&(samples.len() as u64).to_le_bytes());
    out.extend_from_slice(&index_crc.to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
    out
}

/// Writes one shard file and returns its manifest record.
pub fn write_shard(
    dir: &Path,
    id: u32,
    samples: &[Vec<u8>],
    base: u64,
    encoding: EncodingChoice,
    level: Level,
) -> Result<ShardMeta> {
    let bytes = encode_shard(samples, base, encoding, level);
    let file = shard_file_name(id);
    // Write to a temp name then rename, so a crash never leaves a
    // half-written file under the canonical name.
    let tmp = dir.join(format!(".{file}.tmp"));
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, dir.join(&file))?;
    Ok(ShardMeta {
        id,
        file,
        first: base,
        count: samples.len() as u64,
        bytes: bytes.len() as u64,
        crc32: crc32(&bytes),
        encoding,
    })
}

/// Packs every sample of `source` into `.sshard` files under `dir` and
/// writes the store manifest. Returns the manifest.
pub fn pack_store(
    source: &dyn SampleSource,
    dir: &Path,
    config: PackConfig,
) -> Result<StoreManifest> {
    fs::create_dir_all(dir)?;
    let total = source.len();
    let mut shards = Vec::new();
    let mut pending: Vec<Vec<u8>> = Vec::new();
    let mut pending_bytes = 0u64;
    let mut base = 0u64;
    let mut id = 0u32;
    let flush = |pending: &mut Vec<Vec<u8>>,
                 pending_bytes: &mut u64,
                 base: &mut u64,
                 id: &mut u32,
                 shards: &mut Vec<ShardMeta>|
     -> Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        let meta = write_shard(dir, *id, pending, *base, config.encoding, config.level)?;
        *base += pending.len() as u64;
        *id += 1;
        pending.clear();
        *pending_bytes = 0;
        shards.push(meta);
        Ok(())
    };
    for idx in 0..total {
        let raw = source.fetch(idx).map_err(StoreError::Backing)?;
        pending_bytes += raw.len() as u64;
        pending.push(raw);
        if pending_bytes >= config.target_shard_bytes {
            flush(
                &mut pending,
                &mut pending_bytes,
                &mut base,
                &mut id,
                &mut shards,
            )?;
        }
    }
    flush(
        &mut pending,
        &mut pending_bytes,
        &mut base,
        &mut id,
        &mut shards,
    )?;
    let manifest = StoreManifest { shards };
    manifest.write_to(dir)?;
    Ok(manifest)
}

/// One footer-index entry, decoded.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    offset: u64,
    stored_len: u32,
    raw_len: u32,
    crc32: u32,
    encoding: PayloadEncoding,
}

/// A file handle that supports concurrent positioned reads.
///
/// On Unix this is `pread(2)` on a shared descriptor — no seek lock, so
/// reader threads never serialize on the file position. Elsewhere it
/// degrades to a mutex-guarded seek + read.
#[derive(Debug)]
struct PositionedFile {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: parking_lot::Mutex<File>,
}

impl PositionedFile {
    fn new(file: File) -> Self {
        #[cfg(unix)]
        {
            Self { file }
        }
        #[cfg(not(unix))]
        {
            Self {
                file: parking_lot::Mutex::new(file),
            }
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }
}

/// Random-access reader over one `.sshard` file.
///
/// Opening validates the header, trailer, and footer-index CRC up
/// front; each [`ShardReader::fetch`] then verifies the sample payload
/// CRC before returning (and before decompressing).
#[derive(Debug)]
pub struct ShardReader {
    path: PathBuf,
    file: PositionedFile,
    base: u64,
    index: Vec<IndexEntry>,
    index_offset: u64,
    entry_len: usize,
}

/// Little-endian u64 at the start of `b` (panic-free: copies exactly
/// the 8 bytes the caller's bounds-checked slice provides).
fn le_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

/// Little-endian u32 at the start of `b`.
fn le_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_le_bytes(a)
}

impl ShardReader {
    /// Opens and validates a shard file.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = File::open(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingShard(path.clone())
            } else {
                StoreError::Io(e)
            }
        })?;
        let file_len = file.metadata()?.len();
        if (file_len as usize) < HEADER_LEN + TRAILER_LEN {
            return Err(StoreError::Truncated("shard file"));
        }
        let file = PositionedFile::new(file);

        let mut header = [0u8; HEADER_LEN];
        file.read_exact_at(&mut header, 0)?;
        if &header[0..4] != HEADER_MAGIC {
            return Err(StoreError::BadMagic("shard header"));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION && version != VERSION_V1 {
            return Err(StoreError::BadVersion(version));
        }
        let entry_len = if version == VERSION_V1 {
            ENTRY_LEN_V1
        } else {
            ENTRY_LEN
        };
        let flags = u16::from_le_bytes([header[6], header[7]]);
        // v1 has no per-entry encoding byte: flag bit 0 applies to
        // every payload in the shard.
        let v1_encoding = if flags & FLAG_GZIP != 0 {
            PayloadEncoding::Gzip
        } else {
            PayloadEncoding::Raw
        };
        let base = le_u64(&header[8..16]);

        let mut trailer = [0u8; TRAILER_LEN];
        file.read_exact_at(&mut trailer, file_len - TRAILER_LEN as u64)?;
        if &trailer[20..24] != TRAILER_MAGIC {
            return Err(StoreError::BadMagic("shard trailer"));
        }
        let index_offset = le_u64(&trailer[0..8]);
        let count = le_u64(&trailer[8..16]);
        let index_crc = le_u32(&trailer[16..20]);

        let index_len = (count as usize)
            .checked_mul(entry_len)
            .ok_or(StoreError::Malformed("index size overflow"))?;
        let index_end = index_offset
            .checked_add(index_len as u64)
            .ok_or(StoreError::Malformed("index extent overflow"))?;
        if index_offset < HEADER_LEN as u64 || index_end != file_len - TRAILER_LEN as u64 {
            return Err(StoreError::Truncated("shard footer index"));
        }
        let mut index_bytes = vec![0u8; index_len];
        file.read_exact_at(&mut index_bytes, index_offset)?;
        let computed = crc32(&index_bytes);
        if computed != index_crc {
            return Err(StoreError::IndexCorrupt {
                computed,
                stored: index_crc,
            });
        }
        let mut index = Vec::with_capacity(count as usize);
        for entry in index_bytes.chunks_exact(entry_len) {
            let encoding = if version == VERSION_V1 {
                v1_encoding
            } else {
                PayloadEncoding::from_byte(entry[20])
                    .ok_or(StoreError::Malformed("unknown payload encoding byte"))?
            };
            let e = IndexEntry {
                offset: le_u64(&entry[0..8]),
                stored_len: le_u32(&entry[8..12]),
                raw_len: le_u32(&entry[12..16]),
                crc32: le_u32(&entry[16..20]),
                encoding,
            };
            if e.offset < HEADER_LEN as u64 || e.offset + e.stored_len as u64 > index_offset {
                return Err(StoreError::Malformed("sample extent outside shard body"));
            }
            index.push(e);
        }
        Ok(Self {
            path,
            file,
            base,
            index,
            index_offset,
            entry_len,
        })
    }

    /// Number of samples in the shard.
    pub fn count(&self) -> usize {
        self.index.len()
    }

    /// Global index of the shard's first sample.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Whether any payload in the shard is stored gzip-compressed.
    pub fn is_gzip(&self) -> bool {
        self.index
            .iter()
            .any(|e| e.encoding == PayloadEncoding::Gzip)
    }

    /// Payload encoding of local sample `idx`.
    pub fn encoding(&self, idx: usize) -> Option<PayloadEncoding> {
        self.index.get(idx).map(|e| e.encoding)
    }

    /// Per-encoding tally over the shard's entries.
    pub fn encoding_counts(&self) -> EncodingCounts {
        let mut counts = EncodingCounts::default();
        for e in &self.index {
            counts.record(e.encoding);
        }
        counts
    }

    /// Raw (decoded) length of local sample `idx`.
    pub fn raw_len(&self, idx: usize) -> Option<u32> {
        self.index.get(idx).map(|e| e.raw_len)
    }

    /// Bytes the shard file occupies on disk.
    pub fn file_bytes(&self) -> u64 {
        self.index_offset + (self.index.len() * self.entry_len + TRAILER_LEN) as u64
    }

    /// Fetches local sample `idx`, verifying its CRC (and
    /// decompressing when the shard is gzip-packed).
    pub fn fetch(&self, idx: usize) -> Result<Vec<u8>> {
        let entry = self.index.get(idx).ok_or(StoreError::OutOfRange {
            idx,
            len: self.index.len(),
        })?;
        let mut stored = vec![0u8; entry.stored_len as usize];
        self.file
            .read_exact_at(&mut stored, entry.offset)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    StoreError::Truncated("shard body")
                } else {
                    StoreError::Io(e)
                }
            })?;
        let computed = crc32(&stored);
        if computed != entry.crc32 {
            return Err(StoreError::SampleCorrupt {
                sample: idx,
                computed,
                stored: entry.crc32,
            });
        }
        match entry.encoding {
            PayloadEncoding::Raw => Ok(stored),
            PayloadEncoding::Gzip => {
                let raw = sciml_compress::gzip_decompress(&stored)?;
                if raw.len() != entry.raw_len as usize {
                    return Err(StoreError::Malformed("decompressed length mismatch"));
                }
                Ok(raw)
            }
            PayloadEncoding::Pack => {
                let raw = sciml_pack::unpack(&stored)?;
                if raw.len() != entry.raw_len as usize {
                    return Err(StoreError::Malformed("decompressed length mismatch"));
                }
                Ok(raw)
            }
        }
    }

    /// Verifies every sample payload's CRC without decompressing.
    pub fn verify(&self) -> Result<()> {
        for (idx, entry) in self.index.iter().enumerate() {
            let mut stored = vec![0u8; entry.stored_len as usize];
            self.file
                .read_exact_at(&mut stored, entry.offset)
                .map_err(|_| StoreError::Truncated("shard body"))?;
            let computed = crc32(&stored);
            if computed != entry.crc32 {
                return Err(StoreError::SampleCorrupt {
                    sample: idx,
                    computed,
                    stored: entry.crc32,
                });
            }
        }
        Ok(())
    }

    /// Path this reader was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Streams a file through CRC-32 (whole-file integrity for
/// `verify-store` and journal replay) without loading it into memory.
pub fn file_crc32(path: &Path) -> Result<u32> {
    let mut f = File::open(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            StoreError::MissingShard(path.to_path_buf())
        } else {
            StoreError::Io(e)
        }
    })?;
    let mut crc = Crc32::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        crc.update(&buf[..n]);
    }
    Ok(crc.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sciml_shard_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn samples() -> Vec<Vec<u8>> {
        vec![
            vec![1u8; 100],
            Vec::new(), // zero-length sample
            (0..=255u8).collect(),
            vec![42u8; 3000],
        ]
    }

    #[test]
    fn shard_roundtrip_plain() {
        let dir = tmp_dir("plain");
        let meta = write_shard(&dir, 0, &samples(), 7, EncodingChoice::Raw, Level::Fast).unwrap();
        assert_eq!(meta.count, 4);
        assert_eq!(meta.first, 7);
        let r = ShardReader::open(dir.join(&meta.file)).unwrap();
        assert_eq!(r.count(), 4);
        assert_eq!(r.base(), 7);
        assert!(!r.is_gzip());
        for (i, want) in samples().iter().enumerate() {
            assert_eq!(&r.fetch(i).unwrap(), want, "sample {i}");
        }
        r.verify().unwrap();
        assert_eq!(r.file_bytes(), meta.bytes);
        assert!(matches!(
            r.fetch(4),
            Err(StoreError::OutOfRange { idx: 4, len: 4 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_roundtrip_gzip() {
        let dir = tmp_dir("gzip");
        let meta = write_shard(&dir, 0, &samples(), 0, EncodingChoice::Gzip, Level::Fast).unwrap();
        let r = ShardReader::open(dir.join(&meta.file)).unwrap();
        assert!(r.is_gzip());
        for (i, want) in samples().iter().enumerate() {
            assert_eq!(&r.fetch(i).unwrap(), want, "sample {i}");
            assert_eq!(r.raw_len(i).unwrap() as usize, want.len());
            assert_eq!(r.encoding(i), Some(PayloadEncoding::Gzip));
        }
        // Highly repetitive payloads must actually compress.
        let plain = encode_shard(&samples(), 0, EncodingChoice::Raw, Level::Fast);
        assert!(meta.bytes < plain.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_roundtrip_pack_and_auto() {
        let dir = tmp_dir("pack");
        for (tag, choice) in [(0u32, EncodingChoice::Pack), (1, EncodingChoice::Auto)] {
            let meta = write_shard(&dir, tag, &samples(), 0, choice, Level::Fast).unwrap();
            assert_eq!(meta.encoding, choice);
            let r = ShardReader::open(dir.join(&meta.file)).unwrap();
            for (i, want) in samples().iter().enumerate() {
                assert_eq!(&r.fetch(i).unwrap(), want, "{choice} sample {i}");
            }
            r.verify().unwrap();
            let counts = r.encoding_counts();
            assert_eq!(counts.raw + counts.gzip + counts.pack, samples().len());
        }
        // Auto must store the long repetitive payload compressed, and
        // pick raw for the incompressible 0..=255 ramp... which pack's
        // delta stage actually squeezes too — so just check auto never
        // stores a payload larger than raw would.
        let auto = encode_shard(&samples(), 0, EncodingChoice::Auto, Level::Fast);
        let plain = encode_shard(&samples(), 0, EncodingChoice::Raw, Level::Fast);
        assert!(auto.len() <= plain.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_shard_files_still_read() {
        // Hand-build a version-1 shard (20-byte entries, gzip flag).
        let dir = tmp_dir("v1");
        for gzip in [false, true] {
            let mut out = Vec::new();
            out.extend_from_slice(HEADER_MAGIC);
            out.extend_from_slice(&VERSION_V1.to_le_bytes());
            out.extend_from_slice(&if gzip { FLAG_GZIP } else { 0 }.to_le_bytes());
            out.extend_from_slice(&0u64.to_le_bytes());
            let mut index = Vec::new();
            for raw in samples() {
                let stored = if gzip {
                    sciml_compress::gzip_compress(&raw, Level::Fast)
                } else {
                    raw.clone()
                };
                index.extend_from_slice(&(out.len() as u64).to_le_bytes());
                index.extend_from_slice(&(stored.len() as u32).to_le_bytes());
                index.extend_from_slice(&(raw.len() as u32).to_le_bytes());
                index.extend_from_slice(&crc32(&stored).to_le_bytes());
                out.extend_from_slice(&stored);
            }
            let index_offset = out.len() as u64;
            let index_crc = crc32(&index);
            out.extend_from_slice(&index);
            out.extend_from_slice(&index_offset.to_le_bytes());
            out.extend_from_slice(&(samples().len() as u64).to_le_bytes());
            out.extend_from_slice(&index_crc.to_le_bytes());
            out.extend_from_slice(TRAILER_MAGIC);
            let path = dir.join(format!("v1_{gzip}.sshard"));
            std::fs::write(&path, &out).unwrap();

            let r = ShardReader::open(&path).unwrap();
            assert_eq!(r.is_gzip(), gzip);
            for (i, want) in samples().iter().enumerate() {
                assert_eq!(&r.fetch(i).unwrap(), want, "v1 gzip={gzip} sample {i}");
            }
            r.verify().unwrap();
            assert_eq!(r.file_bytes(), out.len() as u64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_shard_roundtrips() {
        let dir = tmp_dir("empty");
        let meta = write_shard(&dir, 0, &[], 0, EncodingChoice::Raw, Level::Fast).unwrap();
        let r = ShardReader::open(dir.join(&meta.file)).unwrap();
        assert_eq!(r.count(), 0);
        r.verify().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_fetches_share_one_reader() {
        let dir = tmp_dir("conc");
        let many: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i; 512]).collect();
        let meta = write_shard(&dir, 0, &many, 0, EncodingChoice::Raw, Level::Fast).unwrap();
        let r = std::sync::Arc::new(ShardReader::open(dir.join(&meta.file)).unwrap());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for round in 0..32 {
                        let idx = (t * 11 + round * 5) % 64;
                        assert_eq!(r.fetch(idx).unwrap(), vec![idx as u8; 512]);
                    }
                });
            }
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_crc_matches_manifest_crc() {
        let dir = tmp_dir("crc");
        let meta = write_shard(&dir, 3, &samples(), 0, EncodingChoice::Raw, Level::Fast).unwrap();
        assert_eq!(file_crc32(&dir.join(&meta.file)).unwrap(), meta.crc32);
        assert!(matches!(
            file_crc32(&dir.join("nope.sshard")),
            Err(StoreError::MissingShard(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
