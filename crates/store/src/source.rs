//! [`SampleSource`] implementations over the packed store: a direct
//! reader for a complete store directory, and the staged-with-fallback
//! view used while a [`Stager`](crate::stager::Stager) is running.

use crate::manifest::StoreManifest;
use crate::shard::{file_crc32, PayloadEncoding, ShardReader};
use crate::stager::Shared;
use crate::{Result, StoreError};
use sciml_obs::{Counter, Histogram, Telemetry};
use sciml_pipeline::source::SampleSource;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A [`SampleSource`] over a complete packed store directory.
///
/// Opening loads the manifest and every shard's footer index (validated
/// by CRC); fetches are then positioned reads against shared file
/// descriptors, so concurrent pipeline readers never serialize on a
/// seek lock.
pub struct ShardSource {
    dir: PathBuf,
    manifest: StoreManifest,
    readers: Vec<ShardReader>,
    read: AtomicU64,
    fetch_us: Option<Arc<Histogram>>,
    fetches: Option<Arc<Counter>>,
    /// Per-encoding decode counters (`store.decode.{raw,gzip,pack}`),
    /// indexed by [`PayloadEncoding`] discriminant order. On a serving
    /// node these share the registry with `ServerMetrics`, which lifts
    /// them into v5 stats replies.
    decoded: Option<[Arc<Counter>; 3]>,
}

impl ShardSource {
    /// Opens a packed store directory, validating every shard's header
    /// and footer index up front.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::open_inner(dir.into(), None)
    }

    /// [`ShardSource::open`] plus `store.fetch.*` instruments in
    /// `telemetry.registry` (latency histogram and fetch counter).
    pub fn open_with_telemetry(dir: impl Into<PathBuf>, telemetry: &Telemetry) -> Result<Self> {
        Self::open_inner(dir.into(), Some(telemetry))
    }

    fn open_inner(dir: PathBuf, telemetry: Option<&Telemetry>) -> Result<Self> {
        let manifest = StoreManifest::load_from(&dir)?;
        let mut readers = Vec::with_capacity(manifest.shards.len());
        for meta in &manifest.shards {
            let reader = ShardReader::open(dir.join(&meta.file))?;
            if reader.base() != meta.first || reader.count() as u64 != meta.count {
                return Err(StoreError::Manifest(format!(
                    "shard {} disagrees with manifest (base {} count {}, manifest {} {})",
                    meta.file,
                    reader.base(),
                    reader.count(),
                    meta.first,
                    meta.count
                )));
            }
            readers.push(reader);
        }
        Ok(Self {
            dir,
            manifest,
            readers,
            read: AtomicU64::new(0),
            fetch_us: telemetry.map(|t| t.registry.histogram("store.fetch.latency_us")),
            fetches: telemetry.map(|t| t.registry.counter("store.fetch.samples")),
            decoded: telemetry.map(|t| {
                [
                    t.registry.counter("store.decode.raw"),
                    t.registry.counter("store.decode.gzip"),
                    t.registry.counter("store.decode.pack"),
                ]
            }),
        })
    }

    /// The store manifest.
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Fetches global sample `idx` with full typed-error reporting.
    pub fn fetch_verified(&self, idx: usize) -> Result<Vec<u8>> {
        let started = Instant::now();
        let (meta, local) = self
            .manifest
            .locate(idx as u64)
            .ok_or(StoreError::OutOfRange {
                idx,
                len: self.manifest.total_samples() as usize,
            })?;
        let reader = &self.readers[meta.id as usize];
        let bytes = reader.fetch(local as usize)?;
        self.read.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        if let Some(h) = &self.fetch_us {
            h.record(started.elapsed().as_micros() as u64);
        }
        if let Some(c) = &self.fetches {
            c.inc();
        }
        if let (Some(decoded), Some(enc)) = (&self.decoded, reader.encoding(local as usize)) {
            let slot = match enc {
                PayloadEncoding::Raw => &decoded[0],
                PayloadEncoding::Gzip => &decoded[1],
                PayloadEncoding::Pack => &decoded[2],
            };
            slot.inc();
        }
        Ok(bytes)
    }

    /// Verifies the whole store: each shard file's CRC against the
    /// manifest, then every sample payload's CRC against the footer
    /// index. Returns the number of samples verified.
    pub fn verify(&self) -> Result<u64> {
        for meta in &self.manifest.shards {
            let computed = file_crc32(&self.dir.join(&meta.file))?;
            if computed != meta.crc32 {
                return Err(StoreError::Manifest(format!(
                    "shard {} file CRC mismatch (computed {computed:#010x}, manifest {:#010x})",
                    meta.file, meta.crc32
                )));
            }
        }
        for reader in &self.readers {
            reader.verify()?;
        }
        Ok(self.manifest.total_samples())
    }
}

impl SampleSource for ShardSource {
    fn len(&self) -> usize {
        self.manifest.total_samples() as usize
    }

    fn fetch(&self, idx: usize) -> sciml_pipeline::Result<Vec<u8>> {
        Ok(self.fetch_verified(idx)?)
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

/// The read path over an in-progress staging run: samples in
/// already-staged shards are served from the node-local copy; the rest
/// transparently fall through to the backing source. Built via
/// [`Stager::source`](crate::stager::Stager::source).
pub struct StagingSource {
    backing: Arc<dyn SampleSource>,
    shared: Arc<Shared>,
    read: AtomicU64,
}

impl StagingSource {
    pub(crate) fn over(backing: Arc<dyn SampleSource>, shared: Arc<Shared>) -> Self {
        Self {
            backing,
            shared,
            read: AtomicU64::new(0),
        }
    }

    /// Fetches served from staged local shards so far.
    pub fn local_hits(&self) -> u64 {
        self.shared.metrics.local_hits.get()
    }

    /// Fetches that fell through to the backing source so far.
    pub fn fallthroughs(&self) -> u64 {
        self.shared.metrics.fallthrough.get()
    }

    /// Fetches global sample `idx` with full typed-error reporting.
    pub fn fetch_verified(&self, idx: usize) -> Result<Vec<u8>> {
        let total = self.shared.total_samples() as usize;
        let shard = self
            .shared
            .shard_for(idx as u64)
            .ok_or(StoreError::OutOfRange { idx, len: total })?;
        let bytes = if self.shared.is_staged(shard) {
            let started = Instant::now();
            let reader = self.shared.reader(shard)?;
            let local = idx as u64 - self.shared.plans[shard].first;
            let bytes = reader.fetch(local as usize)?;
            self.shared
                .metrics
                .fetch_us
                .record(started.elapsed().as_micros() as u64);
            self.shared.metrics.local_hits.inc();
            bytes
        } else {
            self.shared.metrics.fallthrough.inc();
            self.backing.fetch(idx).map_err(StoreError::Backing)?
        };
        self.read.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(bytes)
    }
}

impl SampleSource for StagingSource {
    fn len(&self) -> usize {
        self.shared.total_samples() as usize
    }

    fn fetch(&self, idx: usize) -> sciml_pipeline::Result<Vec<u8>> {
        Ok(self.fetch_verified(idx)?)
    }

    fn bytes_read(&self) -> u64 {
        self.read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::plan_by_count;
    use crate::shard::{pack_store, PackConfig};
    use crate::stager::{Stager, StagerConfig};
    use sciml_pipeline::source::VecSource;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sciml_src_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn blobs(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                (0..(i * 13) % 700)
                    .map(|j| ((i * 31 + j * 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn shard_source_matches_origin() {
        let dir = tmp_dir("match");
        let samples = blobs(20);
        let origin = VecSource::new(samples.clone());
        let manifest = pack_store(
            &origin,
            &dir,
            PackConfig {
                target_shard_bytes: 1500,
                ..PackConfig::default()
            },
        )
        .unwrap();
        assert!(manifest.shards.len() > 1, "packing must split shards");
        let store = ShardSource::open(&dir).unwrap();
        assert_eq!(store.len(), 20);
        for (i, want) in samples.iter().enumerate() {
            assert_eq!(&SampleSource::fetch(&store, i).unwrap(), want);
        }
        assert_eq!(store.verify().unwrap(), 20);
        assert!(store.fetch_verified(20).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_source_counts_bytes_read() {
        let dir = tmp_dir("bytes");
        let samples = vec![vec![9u8; 100], vec![8u8; 50]];
        pack_store(&VecSource::new(samples), &dir, PackConfig::default()).unwrap();
        let store = ShardSource::open(&dir).unwrap();
        SampleSource::fetch(&store, 0).unwrap();
        SampleSource::fetch(&store, 1).unwrap();
        assert_eq!(store.bytes_read(), 150);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_source_registers_fetch_metrics() {
        let dir = tmp_dir("metrics");
        pack_store(&VecSource::new(blobs(4)), &dir, PackConfig::default()).unwrap();
        let tel = Telemetry::new();
        let store = ShardSource::open_with_telemetry(&dir, &tel).unwrap();
        for i in 0..4 {
            SampleSource::fetch(&store, i).unwrap();
        }
        let snap = tel.registry.snapshot();
        assert_eq!(snap.counter("store.fetch.samples"), 4);
        assert_eq!(snap.histogram("store.fetch.latency_us").unwrap().count, 4);
        // Every fetch lands in exactly one per-encoding decode counter.
        let decoded = snap.counter("store.decode.raw")
            + snap.counter("store.decode.gzip")
            + snap.counter("store.decode.pack");
        assert_eq!(decoded, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staging_source_mixes_local_and_fallthrough() {
        let dir = tmp_dir("mix");
        let samples = blobs(12);
        let backing: Arc<dyn SampleSource> = Arc::new(VecSource::new(samples.clone()));
        let stager = Stager::new(
            Arc::clone(&backing),
            plan_by_count(12, 4),
            &dir,
            StagerConfig::default(),
        )
        .unwrap();
        // Stage only the first of three shards.
        assert_eq!(stager.stage_one().unwrap(), Some(0));
        let src = stager.source();
        for (i, want) in samples.iter().enumerate() {
            assert_eq!(&SampleSource::fetch(&src, i).unwrap(), want, "sample {i}");
        }
        assert_eq!(src.local_hits(), 4);
        assert_eq!(src.fallthroughs(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }
}
