//! Background staging manager: copies shard-sized sample ranges from a
//! backing [`SampleSource`] into a node-local directory of `.sshard`
//! files, journaling completed shards so a restarted job resumes
//! instead of re-fetching.
//!
//! Per-shard state machine (one `AtomicU8` per shard, CAS-claimed so
//! any number of workers cooperate without a scheduler lock):
//!
//! ```text
//!             claim (CAS)            write + journal
//!  PENDING ──────────────► INFLIGHT ────────────────► STAGED
//!     ▲                        │                        ▲
//!     │ transient error,       │ retries exhausted      │ journal replay
//!     │ retry w/ backoff       ▼                        │ (CRC-verified)
//!     └──────────────────── FAILED          (on restart)┘
//! ```
//!
//! In-flight bytes are bounded by a `Mutex` + `Condvar` budget so a
//! wide worker pool cannot buffer an unbounded slice of the dataset in
//! memory while the local disk keeps up.

use crate::manifest::{JournalEntry, ShardMeta, ShardPlan, StagingJournal, StoreManifest};
use crate::shard::{shard_file_name, write_shard, EncodingChoice, ShardReader};
use crate::{Result, StoreError};
use parking_lot::{Condvar, Mutex};
use sciml_compress::Level;
use sciml_obs::{Counter, Gauge, Histogram, MetricsRegistry, Telemetry};
use sciml_pipeline::source::SampleSource;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const ST_PENDING: u8 = 0;
const ST_INFLIGHT: u8 = 1;
const ST_STAGED: u8 = 2;
const ST_FAILED: u8 = 3;

/// Staging instruments. Registered under `store.*` names when a
/// registry is supplied; otherwise standalone (still counted, just not
/// exported with a snapshot).
#[derive(Debug, Clone)]
pub(crate) struct StagingMetrics {
    pub(crate) shards_staged: Arc<Counter>,
    pub(crate) bytes_staged: Arc<Counter>,
    pub(crate) shards_resumed: Arc<Counter>,
    pub(crate) retries: Arc<Counter>,
    pub(crate) shards_failed: Arc<Counter>,
    pub(crate) progress_pct: Arc<Gauge>,
    pub(crate) shard_us: Arc<Histogram>,
    pub(crate) local_hits: Arc<Counter>,
    pub(crate) fallthrough: Arc<Counter>,
    pub(crate) fetch_us: Arc<Histogram>,
}

impl StagingMetrics {
    fn registered(reg: &MetricsRegistry) -> Self {
        Self {
            shards_staged: reg.counter("store.staging.shards_staged"),
            bytes_staged: reg.counter("store.staging.bytes_staged"),
            shards_resumed: reg.counter("store.staging.shards_resumed"),
            retries: reg.counter("store.staging.retries"),
            shards_failed: reg.counter("store.staging.shards_failed"),
            progress_pct: reg.gauge("store.staging.progress_pct"),
            shard_us: reg.histogram("store.staging.shard_us"),
            local_hits: reg.counter("store.staging.local_hits"),
            fallthrough: reg.counter("store.staging.fallthrough"),
            fetch_us: reg.histogram("store.staging.fetch_us"),
        }
    }
}

/// Per-shard staging state shared between the [`Stager`] and any
/// [`StagingSource`](crate::source::StagingSource) views over it.
pub(crate) struct Shared {
    pub(crate) dir: PathBuf,
    pub(crate) plans: Vec<ShardPlan>,
    states: Vec<AtomicU8>,
    staged_file_bytes: Vec<AtomicU64>,
    /// CRC of each staged shard file (from the write or journal replay),
    /// used to finalize a `store.manifest` once every shard is staged.
    staged_crcs: Vec<AtomicU32>,
    readers: Vec<OnceLock<Arc<ShardReader>>>,
    manifest_written: AtomicBool,
    pub(crate) metrics: StagingMetrics,
}

impl Shared {
    /// Shard (by position in `plans`) containing global sample `idx`.
    pub(crate) fn shard_for(&self, idx: u64) -> Option<usize> {
        let pos = self.plans.partition_point(|p| p.first + p.count <= idx);
        let plan = self.plans.get(pos)?;
        (idx >= plan.first && idx < plan.first + plan.count).then_some(pos)
    }

    /// Total samples covered by the staging plan.
    pub(crate) fn total_samples(&self) -> u64 {
        self.plans.iter().map(|p| p.count).sum()
    }

    pub(crate) fn is_staged(&self, shard: usize) -> bool {
        self.states[shard].load(Ordering::Acquire) == ST_STAGED
    }

    fn mark(&self, shard: usize, state: u8) {
        self.states[shard].store(state, Ordering::Release);
    }

    fn update_progress_gauge(&self) {
        let staged = self.staged_count();
        let total = self.plans.len().max(1);
        self.metrics.progress_pct.set((staged * 100 / total) as i64);
    }

    fn staged_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) == ST_STAGED)
            .count()
    }

    /// Opens (once) and returns the reader for a staged shard.
    pub(crate) fn reader(&self, shard: usize) -> Result<Arc<ShardReader>> {
        if let Some(r) = self.readers[shard].get() {
            return Ok(Arc::clone(r));
        }
        let opened = Arc::new(ShardReader::open(
            self.dir.join(shard_file_name(self.plans[shard].id)),
        )?);
        // Another thread may have won the race; either way the cell now
        // holds a valid reader for this shard.
        let _ = self.readers[shard].set(Arc::clone(&opened));
        Ok(Arc::clone(
            // lint:allow(no_panics): the OnceLock was set on the line
            // above (or by a racing thread); get() cannot be empty.
            self.readers[shard].get().expect("reader just set"),
        ))
    }
}

/// Tuning for the staging manager.
#[derive(Debug, Clone, Copy)]
pub struct StagerConfig {
    /// Background worker threads for [`Stager::spawn_workers`].
    pub workers: usize,
    /// Upper bound on sample bytes held in memory by in-flight shard
    /// copies. A shard larger than the whole budget still proceeds when
    /// it is the only one in flight.
    pub max_inflight_bytes: u64,
    /// Extra attempts per shard after the first failure.
    pub max_retries: u32,
    /// Base backoff after a failed attempt; doubles per retry.
    pub retry_backoff: Duration,
    /// Payload encoding for staged shards. `None` mirrors each plan's
    /// encoding (what the exporting store was packed with); `Some`
    /// overrides it for every shard.
    pub encoding: Option<EncodingChoice>,
    /// Compression effort for gzip-encoded payloads.
    pub level: Level,
}

impl Default for StagerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_inflight_bytes: 256 * 1024 * 1024,
            max_retries: 3,
            retry_backoff: Duration::from_millis(10),
            encoding: None,
            level: Level::Fast,
        }
    }
}

/// Point-in-time staging progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagingProgress {
    /// Shards in the plan.
    pub total_shards: usize,
    /// Shards staged (including resumed ones).
    pub staged_shards: usize,
    /// Shards that exhausted their retry budget.
    pub failed_shards: usize,
    /// Bytes of staged shard files on local disk.
    pub staged_bytes: u64,
}

impl StagingProgress {
    /// True when every shard is staged.
    pub fn complete(&self) -> bool {
        self.staged_shards == self.total_shards
    }
}

struct StagerInner {
    shared: Arc<Shared>,
    backing: Arc<dyn SampleSource>,
    config: StagerConfig,
    journal: Mutex<StagingJournal>,
    inflight_bytes: Mutex<u64>,
    budget_cv: Condvar,
    stop: AtomicBool,
    workers: Mutex<Vec<JoinHandle<Result<()>>>>,
    telemetry: Telemetry,
}

/// The staging manager. Cheap to clone — all clones drive the same
/// shard state machine, so extra threads can simply call
/// [`Stager::stage_one`] in a loop to add staging bandwidth.
#[derive(Clone)]
pub struct Stager {
    inner: Arc<StagerInner>,
}

impl std::fmt::Debug for Stager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stager")
            .field("dir", &self.inner.shared.dir)
            .field("progress", &self.progress())
            .finish_non_exhaustive()
    }
}

impl Stager {
    /// Creates a stager copying `plans` from `backing` into
    /// `staging_dir`, resuming from any journal already there.
    pub fn new(
        backing: Arc<dyn SampleSource>,
        plans: Vec<ShardPlan>,
        staging_dir: impl Into<PathBuf>,
        config: StagerConfig,
    ) -> Result<Self> {
        Self::with_telemetry(backing, plans, staging_dir, config, Telemetry::disabled())
    }

    /// [`Stager::new`] with staging metrics registered in
    /// `telemetry.registry` and per-shard spans on its tracer.
    pub fn with_telemetry(
        backing: Arc<dyn SampleSource>,
        plans: Vec<ShardPlan>,
        staging_dir: impl Into<PathBuf>,
        config: StagerConfig,
        telemetry: Telemetry,
    ) -> Result<Self> {
        let dir: PathBuf = staging_dir.into();
        let planned: u64 = plans.iter().map(|p| p.count).sum();
        if planned != backing.len() as u64 {
            return Err(StoreError::Manifest(format!(
                "staging plan covers {planned} samples but backing source has {}",
                backing.len()
            )));
        }
        let mut expect = 0u64;
        for p in &plans {
            if p.first != expect || p.count == 0 {
                return Err(StoreError::Manifest(
                    "staging plan must be contiguous from sample 0 with non-empty shards".into(),
                ));
            }
            expect += p.count;
        }

        let journal = StagingJournal::open(&dir)?;
        let metrics = StagingMetrics::registered(&telemetry.registry);
        let shared = Arc::new(Shared {
            states: plans.iter().map(|_| AtomicU8::new(ST_PENDING)).collect(),
            staged_file_bytes: plans.iter().map(|_| AtomicU64::new(0)).collect(),
            staged_crcs: plans.iter().map(|_| AtomicU32::new(0)).collect(),
            readers: plans.iter().map(|_| OnceLock::new()).collect(),
            manifest_written: AtomicBool::new(false),
            dir: dir.clone(),
            plans,
            metrics,
        });

        // Resume: trust only journal entries whose staged file still
        // matches its recorded CRC; everything else stages again.
        let id_to_pos: std::collections::HashMap<u32, usize> = shared
            .plans
            .iter()
            .enumerate()
            .map(|(pos, p)| (p.id, pos))
            .collect();
        for entry in journal.replay(&dir, shard_file_name) {
            if let Some(&pos) = id_to_pos.get(&entry.id) {
                shared.mark(pos, ST_STAGED);
                shared.staged_crcs[pos].store(entry.crc32, Ordering::Relaxed);
                if let Ok(md) = std::fs::metadata(dir.join(shard_file_name(entry.id))) {
                    shared.staged_file_bytes[pos].store(md.len(), Ordering::Relaxed);
                }
                shared.metrics.shards_resumed.inc();
            }
        }
        shared.update_progress_gauge();

        let stager = Self {
            inner: Arc::new(StagerInner {
                shared,
                backing,
                config,
                journal: Mutex::new(journal),
                inflight_bytes: Mutex::new(0),
                budget_cv: Condvar::new(),
                stop: AtomicBool::new(false),
                workers: Mutex::new(Vec::new()),
                telemetry,
            }),
        };
        // A prior run may have staged the last shard and died before the
        // manifest landed; finalize now so the dir is a full store.
        stager.finalize_if_complete()?;
        Ok(stager)
    }

    /// Writes a `store.manifest` into the staging directory once every
    /// shard is staged, turning it into a complete packed store that
    /// [`ShardSource::open`](crate::ShardSource::open) (and later
    /// staging runs) can use directly. Idempotent; no-op until then.
    fn finalize_if_complete(&self) -> Result<()> {
        let shared = &self.inner.shared;
        if shared.staged_count() != shared.plans.len()
            || shared.manifest_written.swap(true, Ordering::AcqRel)
        {
            return Ok(());
        }
        let shards = shared
            .plans
            .iter()
            .enumerate()
            .map(|(pos, p)| ShardMeta {
                id: p.id,
                file: shard_file_name(p.id),
                first: p.first,
                count: p.count,
                bytes: shared.staged_file_bytes[pos].load(Ordering::Relaxed),
                crc32: shared.staged_crcs[pos].load(Ordering::Relaxed),
                encoding: self.inner.config.encoding.unwrap_or(p.encoding),
            })
            .collect();
        StoreManifest { shards }.write_to(&shared.dir)
    }

    /// The shared staging state, for building a
    /// [`StagingSource`](crate::source::StagingSource) view.
    pub(crate) fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.inner.shared)
    }

    /// The backing source this stager copies from.
    pub(crate) fn backing(&self) -> Arc<dyn SampleSource> {
        Arc::clone(&self.inner.backing)
    }

    /// Builds the read path over this staging run: staged shards are
    /// served from the local copy, everything else falls through to the
    /// backing source.
    pub fn source(&self) -> crate::source::StagingSource {
        crate::source::StagingSource::over(self.backing(), self.shared())
    }

    /// Current progress.
    pub fn progress(&self) -> StagingProgress {
        let shared = &self.inner.shared;
        let mut staged = 0;
        let mut failed = 0;
        for s in &shared.states {
            match s.load(Ordering::Relaxed) {
                ST_STAGED => staged += 1,
                ST_FAILED => failed += 1,
                _ => {}
            }
        }
        StagingProgress {
            total_shards: shared.plans.len(),
            staged_shards: staged,
            failed_shards: failed,
            staged_bytes: shared
                .staged_file_bytes
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .sum(),
        }
    }

    /// Claims and stages the next pending shard. Returns the staged
    /// shard's id, or `None` when nothing is pending (all shards are
    /// staged, failed, in flight elsewhere, or the stager was stopped).
    pub fn stage_one(&self) -> Result<Option<u32>> {
        let inner = &self.inner;
        let Some(pos) = self.claim_next() else {
            return Ok(None);
        };
        let plan = inner.shared.plans[pos];
        if !self.acquire_budget(plan.bytes) {
            // Stopping: hand the claim back.
            inner.shared.mark(pos, ST_PENDING);
            return Ok(None);
        }
        let result = self.stage_claimed(pos, plan);
        self.release_budget(plan.bytes);
        match result {
            Ok(()) => Ok(Some(plan.id)),
            Err(e) => {
                inner.shared.mark(pos, ST_FAILED);
                inner.shared.metrics.shards_failed.inc();
                Err(e)
            }
        }
    }

    /// Stages every pending shard on the calling thread.
    pub fn run(&self) -> Result<StagingProgress> {
        while !self.inner.stop.load(Ordering::Relaxed) {
            if self.stage_one()?.is_none() {
                break;
            }
        }
        Ok(self.progress())
    }

    /// Spawns the configured number of background staging workers.
    /// Call [`Stager::join`] to collect them.
    pub fn spawn_workers(&self) -> usize {
        let n = self.inner.config.workers.max(1);
        let mut workers = self.inner.workers.lock();
        for i in 0..n {
            let stager = self.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sciml-stage-{i}"))
                .spawn(move || stager.run().map(|_| ()))
                // lint:allow(no_panics): thread-spawn failure is
                // resource exhaustion at startup, not a request-path
                // condition; spawn_workers has no error channel.
                .expect("spawn staging worker");
            workers.push(handle);
        }
        n
    }

    /// Asks background workers to stop after their current shard.
    pub fn stop(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.budget_cv.notify_all();
    }

    /// Joins all spawned workers, returning the first staging error if
    /// any worker hit one, else the final progress.
    pub fn join(&self) -> Result<StagingProgress> {
        let handles: Vec<_> = {
            let mut workers = self.inner.workers.lock();
            workers.drain(..).collect()
        };
        let mut first_err = None;
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err =
                        first_err.or(Some(StoreError::Manifest("staging worker panicked".into())))
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(self.progress()),
        }
    }

    fn claim_next(&self) -> Option<usize> {
        let shared = &self.inner.shared;
        for (pos, state) in shared.states.iter().enumerate() {
            if self.inner.stop.load(Ordering::Relaxed) {
                return None;
            }
            if state
                .compare_exchange(ST_PENDING, ST_INFLIGHT, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(pos);
            }
        }
        None
    }

    /// Blocks until `bytes` fits in the in-flight budget (a shard
    /// larger than the whole budget proceeds once it is alone). Returns
    /// `false` if the stager was stopped while waiting.
    fn acquire_budget(&self, bytes: u64) -> bool {
        let inner = &self.inner;
        let mut inflight = inner.inflight_bytes.lock();
        while *inflight > 0 && *inflight + bytes > inner.config.max_inflight_bytes {
            if inner.stop.load(Ordering::Relaxed) {
                return false;
            }
            inflight = inner.budget_cv.wait(inflight);
        }
        if inner.stop.load(Ordering::Relaxed) {
            return false;
        }
        *inflight += bytes;
        true
    }

    fn release_budget(&self, bytes: u64) {
        let mut inflight = self.inner.inflight_bytes.lock();
        *inflight = inflight.saturating_sub(bytes);
        drop(inflight);
        self.inner.budget_cv.notify_all();
    }

    /// Copies one claimed shard: fetch its samples from the backing
    /// source (retrying transient failures with doubling backoff),
    /// write the local `.sshard`, then journal completion.
    fn stage_claimed(&self, pos: usize, plan: ShardPlan) -> Result<()> {
        let inner = &self.inner;
        let _span = inner.telemetry.tracer.span("staging", "stage_shard");
        let started = Instant::now();
        let mut attempt = 0u32;
        let samples = loop {
            match self.fetch_shard_samples(&plan) {
                Ok(s) => break s,
                Err(e) => {
                    if attempt >= inner.config.max_retries {
                        return Err(StoreError::RetriesExhausted(Box::new(e)));
                    }
                    inner.shared.metrics.retries.inc();
                    std::thread::sleep(inner.config.retry_backoff * 2u32.saturating_pow(attempt));
                    attempt += 1;
                }
            }
        };
        let meta = write_shard(
            &inner.shared.dir,
            plan.id,
            &samples,
            plan.first,
            inner.config.encoding.unwrap_or(plan.encoding),
            inner.config.level,
        )?;
        inner.journal.lock().append(JournalEntry {
            id: plan.id,
            crc32: meta.crc32,
        })?;
        inner.shared.staged_file_bytes[pos].store(meta.bytes, Ordering::Relaxed);
        inner.shared.staged_crcs[pos].store(meta.crc32, Ordering::Relaxed);
        inner.shared.mark(pos, ST_STAGED);
        inner.shared.metrics.shards_staged.inc();
        inner.shared.metrics.bytes_staged.add(meta.bytes);
        inner
            .shared
            .metrics
            .shard_us
            .record(started.elapsed().as_micros() as u64);
        inner.shared.update_progress_gauge();
        self.finalize_if_complete()?;
        Ok(())
    }

    fn fetch_shard_samples(&self, plan: &ShardPlan) -> Result<Vec<Vec<u8>>> {
        let mut samples = Vec::with_capacity(plan.count as usize);
        for idx in plan.first..plan.first + plan.count {
            samples.push(
                self.inner
                    .backing
                    .fetch(idx as usize)
                    .map_err(StoreError::Backing)?,
            );
        }
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::plan_by_count;
    use sciml_pipeline::source::VecSource;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sciml_stager_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn backing(n: usize) -> Arc<dyn SampleSource> {
        Arc::new(VecSource::new(
            (0..n).map(|i| vec![(i % 251) as u8; 64 + i]).collect(),
        ))
    }

    #[test]
    fn stages_everything_and_reports_progress() {
        let dir = tmp_dir("full");
        let stager = Stager::new(
            backing(10),
            plan_by_count(10, 3),
            &dir,
            StagerConfig::default(),
        )
        .unwrap();
        let progress = stager.run().unwrap();
        assert!(progress.complete());
        assert_eq!(progress.total_shards, 4);
        assert_eq!(progress.staged_shards, 4);
        assert!(progress.staged_bytes > 0);
        // Staged shards are readable and byte-identical.
        let src = stager.source();
        for i in 0..10usize {
            assert_eq!(
                sciml_pipeline::source::SampleSource::fetch(&src, i).unwrap(),
                vec![(i % 251) as u8; 64 + i]
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn completed_staging_dir_is_a_full_packed_store() {
        let dir = tmp_dir("finalize");
        let stager = Stager::new(
            backing(7),
            plan_by_count(7, 3),
            &dir,
            StagerConfig::default(),
        )
        .unwrap();
        assert!(stager.run().unwrap().complete());
        // The finalized manifest makes the staged dir directly openable
        // — no fall-through source needed anymore.
        let store = crate::ShardSource::open(&dir).unwrap();
        assert_eq!(store.verify().unwrap(), 7);
        for i in 0..7usize {
            assert_eq!(
                store.fetch_verified(i).unwrap(),
                vec![(i % 251) as u8; 64 + i]
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_workers_stage_concurrently() {
        let dir = tmp_dir("bg");
        let stager = Stager::new(
            backing(24),
            plan_by_count(24, 2),
            &dir,
            StagerConfig {
                workers: 4,
                ..StagerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(stager.spawn_workers(), 4);
        let progress = stager.join().unwrap();
        assert!(progress.complete());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_must_match_backing_length() {
        let dir = tmp_dir("mismatch");
        let err = Stager::new(
            backing(10),
            plan_by_count(8, 3),
            &dir,
            StagerConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::Manifest(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn vanished_backing_is_a_typed_error() {
        let dir = tmp_dir("vanished");
        let missing = std::env::temp_dir().join(format!(
            "sciml_gone_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let gone: Arc<dyn SampleSource> =
            Arc::new(sciml_pipeline::source::DirSource::open(&missing, 6));
        let stager = Stager::new(
            gone,
            plan_by_count(6, 2),
            &dir,
            StagerConfig {
                max_retries: 1,
                retry_backoff: Duration::from_millis(1),
                ..StagerConfig::default()
            },
        )
        .unwrap();
        let err = stager.run().unwrap_err();
        assert!(matches!(err, StoreError::RetriesExhausted(_)));
        assert_eq!(stager.progress().failed_shards, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_bounds_inflight_bytes() {
        // Budget smaller than two shards: workers must serialize, but
        // everything still stages (single oversized shard proceeds).
        let dir = tmp_dir("budget");
        let stager = Stager::new(
            backing(8),
            plan_by_count(8, 2)
                .into_iter()
                .map(|mut p| {
                    p.bytes = 1000;
                    p
                })
                .collect(),
            &dir,
            StagerConfig {
                workers: 4,
                max_inflight_bytes: 1500,
                ..StagerConfig::default()
            },
        )
        .unwrap();
        stager.spawn_workers();
        assert!(stager.join().unwrap().complete());
        std::fs::remove_dir_all(&dir).ok();
    }
}
