//! Failure injection for the packed store: every corruption a disk or
//! network can produce must surface as a typed [`StoreError`], never a
//! panic — truncated shards, corrupted footer indexes, bit-flipped
//! payloads, and staging manifests whose backing source has vanished.

use sciml_pipeline::source::{DirSource, VecSource};
use sciml_pipeline::SampleSource;
use sciml_store::manifest::plan_by_count;
use sciml_store::{
    pack_store, PackConfig, ShardReader, ShardSource, Stager, StagerConfig, StoreError,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sciml_fail_store_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn packed_store(tag: &str, n: usize) -> (PathBuf, Vec<Vec<u8>>) {
    let dir = tmp_dir(tag);
    let samples: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 120 + i]).collect();
    pack_store(
        &VecSource::new(samples.clone()),
        &dir,
        PackConfig {
            target_shard_bytes: 300,
            ..PackConfig::default()
        },
    )
    .unwrap();
    (dir, samples)
}

fn shard_path(dir: &Path) -> PathBuf {
    dir.join("shard_000000.sshard")
}

/// Truncation at every byte boundary of a real shard file: open or
/// fetch must fail with a typed error at every cut point, and must
/// never panic.
#[test]
fn truncated_shard_always_typed_error() {
    let (dir, _) = packed_store("truncate", 4);
    let original = std::fs::read(shard_path(&dir)).unwrap();
    for cut in 0..original.len() {
        std::fs::write(shard_path(&dir), &original[..cut]).unwrap();
        match ShardReader::open(shard_path(&dir)) {
            Ok(reader) => {
                // If the trailer happened to survive, payload reads must
                // still catch the missing bytes.
                let mut any_err = false;
                for i in 0..reader.count() {
                    any_err |= reader.fetch(i).is_err();
                }
                assert!(any_err, "cut at {cut} silently read truncated data");
            }
            Err(
                StoreError::Truncated(_)
                | StoreError::BadMagic(_)
                | StoreError::Malformed(_)
                | StoreError::IndexCorrupt { .. }
                | StoreError::Io(_),
            ) => {}
            Err(other) => panic!("cut at {cut}: unexpected error {other}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A bit flip anywhere in the footer index (or trailer) is caught by
/// the index CRC / trailer validation at open time.
#[test]
fn corrupted_footer_index_rejected_at_open() {
    let (dir, _) = packed_store("footer", 4);
    let path = shard_path(&dir);
    let original = std::fs::read(&path).unwrap();
    let reader = ShardReader::open(&path).unwrap();
    let entries = reader.count();
    drop(reader);
    // Index region: 20 bytes per entry + 24-byte trailer at the end.
    let index_start = original.len() - 24 - 20 * entries;
    for pos in (index_start..original.len()).step_by(7) {
        let mut bytes = original.clone();
        bytes[pos] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = match ShardReader::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("corrupt footer byte {pos} accepted"),
        };
        assert!(
            matches!(
                err,
                StoreError::IndexCorrupt { .. }
                    | StoreError::BadMagic(_)
                    | StoreError::BadVersion(_)
                    | StoreError::Truncated(_)
                    | StoreError::Malformed(_)
            ),
            "byte {pos}: unexpected error {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A bit flip in a sample payload passes open (the index is intact) but
/// fails that sample's CRC on fetch — and only that sample's.
#[test]
fn bit_flipped_payload_caught_per_sample() {
    let (dir, samples) = packed_store("payload", 4);
    let path = shard_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    // Header is 16 bytes; flip a bit early in the first payload.
    bytes[20] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let store = ShardSource::open(&dir).unwrap();
    let err = store.fetch_verified(0).unwrap_err();
    assert!(
        matches!(err, StoreError::SampleCorrupt { sample: 0, .. }),
        "unexpected error {err}"
    );
    // Whole-store verification also names the damage.
    assert!(store.verify().is_err());
    // Samples in other shards are untouched and still fetch clean.
    let last = samples.len() - 1;
    assert_eq!(store.fetch_verified(last).unwrap(), samples[last]);
    std::fs::remove_dir_all(&dir).ok();
}

/// A shard file named by the manifest but missing from disk is a typed
/// `MissingShard`, discovered at open time.
#[test]
fn missing_shard_file_is_typed() {
    let (dir, _) = packed_store("missing", 6);
    std::fs::remove_file(shard_path(&dir)).unwrap();
    let err = match ShardSource::open(&dir) {
        Err(e) => e,
        Ok(_) => panic!("store with a missing shard file opened"),
    };
    assert!(
        matches!(err, StoreError::MissingShard(_) | StoreError::Io(_)),
        "unexpected error {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Staging from a backing directory that has vanished: every retry
/// fails, the error is typed (`RetriesExhausted` wrapping the backing
/// failure), the shard is marked failed — and nothing panics. The
/// staging view keeps answering for staged data and returns typed
/// errors for the rest.
#[test]
fn staging_with_vanished_backing_dir_is_typed() {
    let staging = tmp_dir("vanish_staging");
    let gone = tmp_dir("vanish_backing"); // never created
    let backing: Arc<dyn SampleSource> = Arc::new(DirSource::open(&gone, 4));
    let stager = Stager::new(
        backing,
        plan_by_count(4, 2),
        &staging,
        StagerConfig {
            max_retries: 1,
            retry_backoff: Duration::from_millis(1),
            ..StagerConfig::default()
        },
    )
    .unwrap();
    let err = stager.stage_one().unwrap_err();
    assert!(
        matches!(err, StoreError::RetriesExhausted(_)),
        "unexpected error {err}"
    );
    assert_eq!(stager.progress().failed_shards, 1);
    // Fall-through reads hit the same vanished dir: typed, not a panic.
    let view = stager.source();
    assert!(SampleSource::fetch(&view, 0).is_err());
    std::fs::remove_dir_all(&staging).ok();
}

/// Garbage bytes under the shard extension: opening is an error, not a
/// panic, whatever the content.
#[test]
fn garbage_shard_file_rejected() {
    let dir = tmp_dir("garbage");
    std::fs::create_dir_all(&dir).unwrap();
    for content in [
        &b""[..],
        &b"SS"[..],
        &b"not a shard at all, just text"[..],
        &[0u8; 64][..],
        &[0xFFu8; 200][..],
    ] {
        let path = dir.join("shard_000000.sshard");
        std::fs::write(&path, content).unwrap();
        assert!(ShardReader::open(&path).is_err());
    }
    std::fs::remove_dir_all(&dir).ok();
}
