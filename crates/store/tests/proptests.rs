//! Property tests for the packed shard store: pack → index → fetch
//! must round-trip arbitrary sample sets (including zero-length
//! samples), and the manifest / journal text formats must round-trip
//! their parsers.

use proptest::prelude::*;
use sciml_pipeline::source::VecSource;
use sciml_store::manifest::{JournalEntry, ShardMeta, StagingJournal, StoreManifest};
use sciml_store::{pack_store, EncodingChoice, PackConfig, ShardReader, ShardSource};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp dir per proptest case (cases run sequentially per test,
/// but distinct tests run in parallel threads).
fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sciml_prop_store_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn samples_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    // Sizes 0..600 exercise zero-length payloads and multi-shard packs.
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..600), 1..24)
}

fn encodings() -> impl Strategy<Value = EncodingChoice> {
    prop_oneof![
        Just(EncodingChoice::Raw),
        Just(EncodingChoice::Gzip),
        Just(EncodingChoice::Pack),
        Just(EncodingChoice::Auto),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever goes into a pack comes back out, sample for sample,
    /// with every CRC intact — any encoding, any shard size target.
    #[test]
    fn pack_index_fetch_roundtrip(
        samples in samples_strategy(),
        target in 1u64..2048,
        encoding in encodings(),
    ) {
        let dir = tmp_dir("roundtrip");
        let manifest = pack_store(
            &VecSource::new(samples.clone()),
            &dir,
            PackConfig { target_shard_bytes: target, encoding, ..PackConfig::default() },
        ).unwrap();
        prop_assert_eq!(manifest.total_samples(), samples.len() as u64);

        let store = ShardSource::open(&dir).unwrap();
        prop_assert_eq!(store.verify().unwrap(), samples.len() as u64);
        for (i, expected) in samples.iter().enumerate() {
            prop_assert_eq!(&store.fetch_verified(i).unwrap(), expected);
        }
        // Out-of-range stays typed.
        prop_assert!(store.fetch_verified(samples.len()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A single shard file round-trips through its reader regardless of
    /// sample sizes (zero-length included) and base index.
    #[test]
    fn shard_reader_roundtrip(
        samples in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..300), 0..12),
        base in 0u64..1_000_000,
        encoding in encodings(),
    ) {
        let dir = tmp_dir("shard");
        std::fs::create_dir_all(&dir).unwrap();
        let meta = sciml_store::write_shard(
            &dir, 0, &samples, base, encoding, sciml_compress::Level::Fast,
        ).unwrap();
        prop_assert_eq!(meta.first, base);
        let reader = ShardReader::open(dir.join(&meta.file)).unwrap();
        prop_assert_eq!(reader.count(), samples.len());
        prop_assert_eq!(reader.base(), base);
        reader.verify().unwrap();
        for (i, expected) in samples.iter().enumerate() {
            prop_assert_eq!(&reader.fetch(i).unwrap(), expected);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Manifest text serialization parses back to the same manifest for
    /// any structurally valid shard list.
    #[test]
    fn manifest_text_roundtrip(
        counts in prop::collection::vec(1u64..500, 1..16),
        bytes in prop::collection::vec(0u64..u32::MAX as u64, 16),
        crcs in prop::collection::vec(any::<u32>(), 16),
        encs in prop::collection::vec(encodings(), 16),
    ) {
        let mut first = 0u64;
        let shards: Vec<ShardMeta> = counts.iter().enumerate().map(|(i, &count)| {
            let m = ShardMeta {
                id: i as u32,
                file: format!("shard_{i:06}.sshard"),
                first,
                count,
                bytes: bytes[i],
                crc32: crcs[i],
                encoding: encs[i],
            };
            first += count;
            m
        }).collect();
        let manifest = StoreManifest { shards };
        let parsed = StoreManifest::parse(&manifest.to_text()).unwrap();
        prop_assert_eq!(parsed, manifest);
    }

    /// Journal text serialization parses back to the same entries.
    #[test]
    fn journal_text_roundtrip(
        raw in prop::collection::vec((any::<u32>(), any::<u32>()), 0..32),
    ) {
        let entries: Vec<JournalEntry> =
            raw.iter().map(|&(id, crc32)| JournalEntry { id, crc32 }).collect();
        let text = StagingJournal::to_text(&entries);
        prop_assert_eq!(StagingJournal::parse(&text).unwrap(), entries);
    }

    /// Arbitrary junk handed to the parsers returns an error or a valid
    /// structure — never a panic.
    #[test]
    fn parsers_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = StoreManifest::parse(&text);
        let _ = StagingJournal::parse(&text);
    }
}
