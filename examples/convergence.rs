//! Convergence preservation (Figs. 6–7): train the miniature CosmoFlow
//! and DeepCAM models on FP32 baseline inputs versus FP16 decoded inputs
//! and compare loss curves.
//!
//! ```text
//! cargo run --release --example convergence
//! ```

use sciml_core::convergence::{cosmoflow_convergence, deepcam_convergence, ConvergenceConfig};

fn main() {
    let cfg = ConvergenceConfig::paper_scaled();

    println!("DeepCAM (lossy differential codec), {} epochs:", cfg.epochs);
    let run = deepcam_convergence(&cfg, 1);
    println!("{:>6} {:>12} {:>12}", "epoch", "base", "decoded");
    for (e, (b, d)) in run
        .base
        .epoch_losses
        .iter()
        .zip(&run.decoded.epoch_losses)
        .enumerate()
    {
        println!("{e:>6} {b:>12.5} {d:>12.5}");
    }
    println!(
        "max gap: {:.5} ({:.2}% of initial loss)\n",
        run.max_epoch_gap(),
        100.0 * run.max_epoch_gap() / run.base.epoch_losses[0]
    );

    println!("CosmoFlow (lossless LUT codec), 4 seeds:");
    println!("{:>6} {:>12} {:>12}", "seed", "base final", "decoded final");
    for seed in 0..4 {
        let run = cosmoflow_convergence(&cfg, seed);
        println!(
            "{seed:>6} {:>12.5} {:>12.5}",
            run.base.final_loss(),
            run.decoded.final_loss()
        );
    }
    println!("\nDecoded FP16 samples preserve the convergence behaviour of the");
    println!("FP32 baseline under an identical learning schedule (paper §VIII).");
}
