//! CosmoFlow pipeline comparison: the four variants of Figs. 10–11
//! (baseline, gzip, CPU plugin, GPU plugin), measured for real on this
//! host, plus the operator-fusion work reduction of §V-B.
//!
//! ```text
//! cargo run --release --example cosmoflow_pipeline
//! ```

use sciml_core::api::{build_pipeline, DatasetBuilder, EncodedFormat};
use sciml_core::codec::cosmoflow as cf;
use sciml_core::codec::ops::OpCounter;
use sciml_core::codec::Op;
use sciml_core::data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_core::gpusim::GpuSpec;
use sciml_core::pipeline::PipelineConfig;
use std::time::Instant;

fn main() {
    let mut gen_cfg = CosmoFlowConfig::test_small();
    gen_cfg.grid = 32;
    let builder = DatasetBuilder::cosmoflow(gen_cfg.clone());
    let n = 24;

    println!(
        "CosmoFlow pipeline variants ({n} samples, grid {}):\n",
        gen_cfg.grid
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>14}",
        "variant", "bytes", "wall ms", "decode ms", "samples/s"
    );

    let variants: [(&str, EncodedFormat, Option<GpuSpec>); 4] = [
        ("base", EncodedFormat::Base, None),
        ("gzip", EncodedFormat::Gzip, None),
        ("cpu-plugin", EncodedFormat::Custom, None),
        ("gpu-plugin", EncodedFormat::Custom, Some(GpuSpec::V100)),
    ];

    for (label, format, gpu) in variants {
        let blobs = builder.build(n, format);
        let bytes: usize = blobs.iter().map(Vec::len).sum();
        let plugin = builder.plugin(format, gpu, Op::Log1p);
        let t0 = Instant::now();
        let pipeline = build_pipeline(
            blobs,
            plugin,
            PipelineConfig {
                batch_size: 4,
                epochs: 2,
                ..Default::default()
            },
        )
        .expect("launch");
        let (batches, stats) = pipeline.collect_all().expect("run");
        let wall = t0.elapsed().as_secs_f64();
        let samples: usize = batches.iter().map(|b| b.len()).sum();
        println!(
            "{label:<12} {bytes:>12} {:>12.1} {:>12.1} {:>14.1}",
            wall * 1e3,
            stats.decode_seconds() * 1e3,
            samples as f64 / wall
        );
    }

    // Operator-fusion ablation: log1p applications per sample.
    let s = UniverseGenerator::new(gen_cfg).generate(0);
    let enc = cf::encode(&s);
    let fused = OpCounter::new();
    cf::decode_with_counter(&enc, Op::Log1p, &fused).expect("decode");
    let base = OpCounter::new();
    cf::baseline_preprocess_with_counter(&s, Op::Log1p, &base);
    println!(
        "\nfused-operator reduction: baseline {} log1p calls vs {} on unique values ({:.0}x)",
        base.count(),
        fused.count(),
        base.count() as f64 / fused.count() as f64
    );
    println!(
        "encoded sample: {:.2}x smaller than raw f32, {} unique groups in {} chunk(s)",
        enc.compression_ratio(),
        enc.total_groups(),
        enc.chunks.len()
    );
}
