//! DeepCAM codec walk-through: encode a climate sample with the
//! differential codec, decode it on the CPU and on the simulated GPU,
//! inspect the lossiness profile, and run the pipeline end to end with
//! label masks intact.
//!
//! ```text
//! cargo run --release --example deepcam_pipeline
//! ```

use sciml_core::api::{build_pipeline, DatasetBuilder, EncodedFormat};
use sciml_core::codec::deepcam as dc;
use sciml_core::codec::{ErrorStats, Op};
use sciml_core::data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_core::gpusim::{decode_deepcam, Gpu, GpuSpec};
use sciml_core::half::slice::widen;
use sciml_core::pipeline::batch::Label;
use sciml_core::pipeline::PipelineConfig;

fn main() {
    let gen_cfg = DeepCamConfig {
        width: 288,
        height: 192,
        channels: 8,
        ..DeepCamConfig::default()
    };
    let sample = ClimateGenerator::new(gen_cfg.clone()).generate(0);

    // Encode: per-line mode selection.
    let (enc, stats) = dc::encode(&sample, &dc::EncoderConfig::default());
    println!(
        "sample {}x{}x{}: raw {} bytes -> encoded {} bytes ({:.2}x)",
        sample.channels,
        sample.height,
        sample.width,
        sample.raw_f32_bytes(),
        enc.encoded_bytes(),
        enc.compression_ratio()
    );
    println!(
        "lines: {} constant / {} delta / {} raw; {} segments, {} escape literals",
        stats.constant_lines, stats.delta_lines, stats.raw_lines, stats.segments, stats.literals
    );

    // CPU decode and simulated-GPU decode must agree bit for bit.
    let cpu = dc::decode_parallel(&enc, Op::Identity).expect("cpu decode");
    let gpu = Gpu::new(GpuSpec::V100);
    let (dev, kstats, t) = decode_deepcam(&gpu, &enc, Op::Identity).expect("gpu decode");
    assert_eq!(cpu, dev, "GPU kernel must match the CPU decoder");
    println!(
        "\nsimulated V100 decode: {:.1} us ({} warp tasks, {} cycles, {} B DRAM)",
        t * 1e6,
        kstats.tasks,
        kstats.cycles,
        kstats.dram_bytes
    );

    // Lossiness profile (§V-A: ≈3% of values above 10% error, near zero).
    let mut err = ErrorStats::new(1.0);
    err.record_slices(&widen(&cpu), &sample.data);
    println!(
        "lossiness: {:.3}% of values above 10% rel error; {:.0}% of those near zero",
        100.0 * err.frac_above_10pct(),
        100.0 * err.small_value_share()
    );

    // Pipeline with masks: labels travel losslessly.
    let builder = DatasetBuilder::deepcam(DeepCamConfig::test_small());
    let blobs = builder.build(8, EncodedFormat::Custom);
    let plugin = builder.plugin(EncodedFormat::Custom, Some(GpuSpec::A100), Op::Identity);
    let pipeline = build_pipeline(
        blobs,
        plugin,
        PipelineConfig {
            batch_size: 2,
            epochs: 1,
            ..Default::default()
        },
    )
    .expect("launch");
    let (batches, _) = pipeline.collect_all().expect("run");
    let masked: usize = batches
        .iter()
        .flat_map(|b| &b.labels)
        .map(|l| match l {
            Label::Mask(m) => m.iter().filter(|&&c| c != 0).count(),
            _ => 0,
        })
        .sum();
    println!(
        "\npipeline delivered {} batches; {} anomaly pixels across all masks",
        batches.len(),
        masked
    );
}
