//! Observability demo: run the loading pipeline with the unified
//! telemetry layer enabled, then dump the metrics snapshot (JSONL) and
//! a Chrome trace-event file with per-stage worker spans.
//!
//! ```text
//! cargo run --example observability -- --trace-out /tmp/trace.json \
//!     --metrics-out /tmp/metrics.jsonl
//! ```
//!
//! Open the trace in `chrome://tracing` or <https://ui.perfetto.dev>:
//! fetch/decode/batch spans appear on each worker thread's row.

use sciml_core::api::{build_pipeline_observed, DatasetBuilder, EncodedFormat};
use sciml_core::codec::Op;
use sciml_core::data::cosmoflow::CosmoFlowConfig;
use sciml_core::obs::json;
use sciml_core::pipeline::PipelineConfig;
use sciml_core::prelude::Telemetry;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn flag(args: &[String], name: &str) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = flag(&args, "--trace-out").unwrap_or_else(|| "/tmp/sciml_trace.json".into());
    let metrics_out =
        flag(&args, "--metrics-out").unwrap_or_else(|| "/tmp/sciml_metrics.jsonl".into());

    // A small encoded dataset and an observed pipeline over it: two
    // reader and two decoder threads, so the trace shows genuinely
    // concurrent workers.
    let builder = DatasetBuilder::cosmoflow(CosmoFlowConfig::test_small());
    let encoded = builder.build(24, EncodedFormat::Custom);
    let plugin = builder.plugin(EncodedFormat::Custom, None, Op::Log1p);

    let telemetry = Telemetry::new();
    let pipeline = build_pipeline_observed(
        encoded,
        plugin,
        PipelineConfig {
            batch_size: 4,
            reader_threads: 2,
            decode_threads: 2,
            epochs: 2,
            ..Default::default()
        },
        telemetry.clone(),
    )
    .expect("pipeline launch");

    let (batches, stats) = pipeline.collect_all().expect("pipeline run");
    println!(
        "pipeline delivered {} batches ({} samples, {} bytes fetched)",
        batches.len(),
        stats.sample_count(),
        stats.byte_count()
    );

    // Metrics snapshot: every pipeline.* instrument, percentiles included.
    let snap = telemetry.registry.snapshot();
    let decode = snap
        .histogram("pipeline.decode_ns")
        .expect("decode histogram");
    println!(
        "decode latency: {} decodes — p50 {:.1} µs / p95 {:.1} µs / p99 {:.1} µs / max {:.1} µs",
        decode.count,
        decode.percentile(0.50) as f64 / 1e3,
        decode.percentile(0.95) as f64 / 1e3,
        decode.percentile(0.99) as f64 / 1e3,
        decode.max as f64 / 1e3,
    );

    telemetry
        .write_metrics(&metrics_out)
        .expect("write metrics");
    telemetry.write_trace(&trace_out).expect("write trace");
    println!("metrics: {}", metrics_out.display());
    println!("trace:   {}", trace_out.display());

    // Self-check both files: the trace must be well-formed JSON with
    // spans from all pipeline stages across at least two worker threads.
    validate_metrics(&metrics_out);
    validate_trace(&trace_out);
    println!("validated: trace + metrics are well-formed");
}

fn validate_metrics(path: &Path) {
    let text = std::fs::read_to_string(path).expect("read metrics");
    let mut saw_decode = false;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let doc = json::parse(line).expect("metrics line must be valid JSON");
        if let Some(name) = doc.get("name").and_then(|v| v.as_str()) {
            if name == "pipeline.decode_ns" {
                saw_decode = true;
                for key in ["p50", "p95", "p99"] {
                    assert!(
                        doc.get(key).and_then(|v| v.as_f64()).is_some(),
                        "decode histogram line missing {key}"
                    );
                }
            }
        }
    }
    assert!(saw_decode, "metrics dump must include pipeline.decode_ns");
}

fn validate_trace(path: &Path) {
    let text = std::fs::read_to_string(path).expect("read trace");
    let doc = json::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let mut names = BTreeSet::new();
    let mut tids = BTreeSet::new();
    for ev in events {
        if let Some(name) = ev.get("name").and_then(|v| v.as_str()) {
            names.insert(name.to_string());
        }
        if let Some(tid) = ev.get("tid").and_then(|v| v.as_f64()) {
            tids.insert(tid as u64);
        }
    }
    for expected in ["fetch", "decode", "batch"] {
        assert!(names.contains(expected), "trace missing {expected} spans");
    }
    assert!(
        tids.len() >= 2,
        "expected spans from >=2 worker threads, saw {tids:?}"
    );
    println!(
        "trace: {} events, {} distinct threads, span kinds {names:?}",
        events.len(),
        tids.len()
    );
}
