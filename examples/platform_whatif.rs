//! What-if exploration with the platform model: the paper frames its
//! staging/batching sweeps as "exploration of architectural
//! configurations outside the studied systems" (§IX-A). This example
//! evaluates the three real platforms, then a hypothetical system with
//! NVLink-class host links *and* A100 GPUs.
//!
//! ```text
//! cargo run --release --example platform_whatif
//! ```

use sciml_core::platform::{
    BandwidthCurve, EpochModel, ExperimentConfig, Format, PlatformSpec, WorkloadProfile,
};

fn eval(p: &PlatformSpec, fmt: Format, samples: u64, staged: bool) -> f64 {
    EpochModel::evaluate(&ExperimentConfig {
        platform: p.clone(),
        workload: WorkloadProfile::cosmoflow(),
        format: fmt,
        samples_per_node: samples,
        staged,
        batch: 4,
    })
    .node_throughput
}

fn main() {
    println!("CosmoFlow node throughput (samples/s), large set, staged, batch 4\n");
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>9}",
        "platform", "base", "gzip", "gpu-plugin", "speedup"
    );

    let mut platforms = PlatformSpec::all();

    // Hypothetical: Cori-A100 chassis with Summit-class NVLink host
    // links and a doubled shared-FS allocation.
    let mut dream = PlatformSpec::cori_a100();
    dream.name = "A100+NVLink (what-if)";
    dream.h2d = BandwidthCurve::from_mb_gbs(&[(4.0, 14.0), (16.0, 22.0), (64.0, 30.0)]);
    dream.shared_fs_bw = 4.0e9;
    platforms.push(dream);

    for p in &platforms {
        let samples = 2048 * p.gpus_per_node as u64;
        let base = eval(p, Format::Base, samples, true);
        let gzip = eval(p, Format::Gzip, samples, true);
        let plugin = eval(p, Format::PluginGpu, samples, true);
        println!(
            "{:<22} {base:>10.0} {gzip:>10.0} {plugin:>12.0} {:>8.1}x",
            p.name,
            plugin / base
        );
    }

    println!("\nBatch-size sweep on Cori-A100 (small set, staged):");
    println!("{:>7} {:>10} {:>12}", "batch", "base", "gpu-plugin");
    let a100 = PlatformSpec::cori_a100();
    for batch in [1usize, 2, 4, 8] {
        let cfgf = |fmt| {
            EpochModel::evaluate(&ExperimentConfig {
                platform: a100.clone(),
                workload: WorkloadProfile::cosmoflow(),
                format: fmt,
                samples_per_node: 128 * 8,
                staged: true,
                batch,
            })
            .node_throughput
        };
        println!(
            "{batch:>7} {:>10.0} {:>12.0}",
            cfgf(Format::Base),
            cfgf(Format::PluginGpu)
        );
    }

    println!("\nStorage-tier effect on DeepCAM (base format, batch 4):");
    let w = WorkloadProfile::deepcam();
    for p in PlatformSpec::all() {
        for (label, samples, staged) in [
            ("small/staged", 1536u64, true),
            ("large/staged", 12288, true),
            ("large/unstaged", 12288, false),
        ] {
            let r = EpochModel::evaluate(&ExperimentConfig {
                platform: p.clone(),
                workload: w.clone(),
                format: Format::Base,
                samples_per_node: samples,
                staged,
                batch: 4,
            });
            println!(
                "  {:<10} {label:<15} -> {:>7.1} samples/s (reads from {})",
                p.name,
                r.node_throughput,
                r.tier.label()
            );
        }
    }
}
