//! Quickstart: generate a synthetic CosmoFlow dataset, encode it with
//! the domain-specific codec, and feed it through the loading pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sciml_core::api::{build_pipeline, DatasetBuilder, EncodedFormat};
use sciml_core::codec::Op;
use sciml_core::data::cosmoflow::CosmoFlowConfig;
use sciml_core::pipeline::PipelineConfig;

fn main() {
    // 1. A small synthetic universe set (32³ voxels, 4 redshifts each).
    let gen_cfg = CosmoFlowConfig::test_small();
    let builder = DatasetBuilder::cosmoflow(gen_cfg);
    let n = 16;

    // 2. Encode the dataset in the baseline and custom formats.
    let raw = builder.build(n, EncodedFormat::Base);
    let encoded = builder.build(n, EncodedFormat::Custom);
    let raw_bytes: usize = raw.iter().map(Vec::len).sum();
    let enc_bytes: usize = encoded.iter().map(Vec::len).sum();
    println!("dataset: {n} samples");
    println!("  raw f32:  {raw_bytes:>10} bytes");
    println!(
        "  encoded:  {enc_bytes:>10} bytes ({:.2}x smaller)",
        raw_bytes as f64 / enc_bytes as f64
    );

    // 3. Run the DALI-like pipeline with the CPU decoder plugin: decode
    //    is fused with the log1p preprocessing and emits FP16.
    let plugin = builder.plugin(EncodedFormat::Custom, None, Op::Log1p);
    let pipeline = build_pipeline(
        encoded,
        plugin,
        PipelineConfig {
            batch_size: 4,
            epochs: 1,
            ..Default::default()
        },
    )
    .expect("pipeline launch");

    let (batches, stats) = pipeline.collect_all().expect("pipeline run");
    println!("\npipeline delivered {} batches:", batches.len());
    for b in &batches {
        let first = b.sample(0);
        println!(
            "  epoch {} batch of {} samples, {} FP16 values each (sample[0][0..4] = {:?})",
            b.epoch,
            b.len(),
            b.sample_len,
            &first[..4].iter().map(|h| h.to_f32()).collect::<Vec<_>>()
        );
    }
    println!(
        "\nstage times: fetch {:.2} ms, decode {:.2} ms across {} samples",
        stats.fetch_seconds() * 1e3,
        stats.decode_seconds() * 1e3,
        stats.sample_count()
    );
}
