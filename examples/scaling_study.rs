//! Multi-node scaling study (extension): sweep node counts for the full
//! CosmoFlow dataset on the Cori-V100 model, then rebuild the workload
//! profile from rates measured on *this* machine and model a localhost
//! "node".
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use sciml_core::platform::calibrate::{
    calibrated_profile, localhost_spec, measure_cosmoflow_rates,
};
use sciml_core::platform::{
    scaling, EpochModel, ExperimentConfig, Format, PlatformSpec, WorkloadProfile,
};

fn main() {
    println!("CosmoFlow full dataset (512Ki samples) across Cori-V100 nodes:\n");
    println!(
        "{:>6} {:>14} {:>12} {:>14} {:>11} {:>10}",
        "nodes", "samples/node", "variant", "global s/s", "efficiency", "tier"
    );
    for format in [Format::Base, Format::PluginGpu] {
        let pts = scaling::scale(
            &PlatformSpec::cori_v100(),
            &WorkloadProfile::cosmoflow(),
            format,
            512 * 1024,
            true,
            4,
            scaling::Interconnect::EDR,
            &[1, 8, 32, 128, 512],
        );
        for p in &pts {
            println!(
                "{:>6} {:>14} {:>12} {:>14.0} {:>11.2} {:>10}",
                p.nodes,
                p.samples_per_node,
                format.label(),
                p.global_throughput,
                p.efficiency,
                p.tier
            );
        }
    }

    println!("\nCalibrating host-side rates on this machine (grid 32)...");
    let rates = measure_cosmoflow_rates(32);
    println!(
        "  baseline preprocessing: {:>8.0} MB/s (raw-equivalent, 1 core)",
        rates.preproc_bps / 1e6
    );
    println!(
        "  gzip inflate:           {:>8.0} MB/s",
        rates.inflate_bps / 1e6
    );
    println!(
        "  fused plugin decode:    {:>8.0} MB/s",
        rates.decode_bps / 1e6
    );

    let w = calibrated_profile(&WorkloadProfile::cosmoflow(), rates);
    let host = localhost_spec(
        std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(2),
    );
    println!("\nModeled single-GPU 'localhost' node with calibrated host rates:");
    for format in [
        Format::Base,
        Format::Gzip,
        Format::PluginCpu,
        Format::PluginGpu,
    ] {
        let r = EpochModel::evaluate(&ExperimentConfig {
            platform: host.clone(),
            workload: w.clone(),
            format,
            samples_per_node: 128,
            staged: true,
            batch: 4,
        });
        println!(
            "  {:<11} {:>8.1} samples/s  (reads from {})",
            format.label(),
            r.node_throughput,
            r.tier.label()
        );
    }
}
