//! Staged-dataset demo: the paper's node-local staging flow, end to
//! end on one machine.
//!
//! 1. generate an encoded CosmoFlow dataset and pack it into `.sshard`
//!    shards ("the parallel file system copy"),
//! 2. serve the packed store over loopback TCP ("the storage tier"),
//! 3. stage it shard-by-shard into a second local directory using the
//!    server's exported shard plan ("the compute node"), while a
//!    pipeline consumes the staging view — staged shards served
//!    locally, the rest fetched remotely,
//! 4. verify every staged sample byte-for-byte and print the staging
//!    metrics the telemetry layer collected.
//!
//! ```text
//! cargo run --example store_staging
//! ```
//!
//! The example is self-validating: any mismatch panics.

use sciml_core::api::{DatasetBuilder, EncodedFormat};
use sciml_core::data::cosmoflow::CosmoFlowConfig;
use sciml_core::prelude::{MetricsRegistry, Telemetry};
use sciml_core::store::{pack_store, PackConfig, ShardSource, Stager, StagerConfig};
use sciml_pipeline::source::VecSource;
use sciml_pipeline::SampleSource;
use sciml_serve::{RemoteSource, ServeBuilder, ServerConfig};
use std::sync::Arc;

fn main() {
    let root = std::env::temp_dir().join(format!("sciml_store_demo_{}", std::process::id()));
    let store_dir = root.join("packed");
    let staged_dir = root.join("staged");
    std::fs::remove_dir_all(&root).ok();

    // 1. Generate and pack.
    let mut cfg = CosmoFlowConfig::test_small();
    cfg.grid = 16;
    let n = 24usize;
    let blobs = DatasetBuilder::cosmoflow(cfg).build(n, EncodedFormat::Custom);
    let total_bytes: usize = blobs.iter().map(Vec::len).sum();
    let manifest = pack_store(
        &VecSource::new(blobs.clone()),
        &store_dir,
        PackConfig {
            target_shard_bytes: (total_bytes / 6) as u64,
            ..PackConfig::default()
        },
    )
    .expect("pack store");
    println!(
        "packed {n} samples ({total_bytes} bytes) into {} shards",
        manifest.shards.len()
    );

    // 2. Serve the packed store over loopback.
    let server = ServeBuilder::new()
        .config(ServerConfig {
            cache_bytes: 64 << 20,
            ..ServerConfig::default()
        })
        .dataset_store(
            "cosmo",
            Arc::new(ShardSource::open(&store_dir).expect("open store")),
        )
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    println!("serving packed store on {}", server.local_addr());

    // 3. Stage on the "compute node", using the server's shard plan so
    //    fetches line up with the store's on-disk layout.
    let registry = MetricsRegistry::new();
    let telemetry = Telemetry {
        registry: Arc::clone(&registry),
        tracer: sciml_core::prelude::Tracer::disabled(),
    };
    let remote = RemoteSource::connect(server.local_addr().to_string(), "cosmo").expect("connect");
    let plans = remote.shard_manifest(0).expect("shard manifest");
    assert_eq!(plans, manifest.plans(), "server exports real boundaries");
    let stager = Stager::with_telemetry(
        Arc::new(remote),
        plans,
        &staged_dir,
        StagerConfig {
            workers: 3,
            ..StagerConfig::default()
        },
        telemetry,
    )
    .expect("stager");
    stager.spawn_workers();

    // The training job does not wait for staging: the staging view
    // serves staged shards locally and falls through to the server.
    let view = stager.source();
    for (i, blob) in blobs.iter().enumerate() {
        assert_eq!(&view.fetch(i).expect("fetch via staging view"), blob);
    }
    let progress = stager.join().expect("staging");
    assert!(progress.complete());
    server.shutdown();

    // 4. The staged directory is now a complete packed store of its
    //    own: CRC-verify everything and compare byte-for-byte.
    let staged = ShardSource::open(&staged_dir).expect("open staged store");
    assert_eq!(staged.verify().expect("verify staged"), n as u64);
    for (i, blob) in blobs.iter().enumerate() {
        assert_eq!(&staged.fetch(i).expect("fetch staged"), blob);
    }

    let snap = registry.snapshot();
    println!(
        "staged {}/{} shards, {} bytes — local hits {}, fall-throughs {} during staging",
        progress.staged_shards,
        progress.total_shards,
        progress.staged_bytes,
        snap.counter("store.staging.local_hits"),
        snap.counter("store.staging.fallthrough"),
    );
    println!("OK — staged copy verified byte-for-byte against the source");
    std::fs::remove_dir_all(&root).ok();
}
