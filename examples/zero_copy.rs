//! Zero-copy pipeline smoke: pooled decode must be byte-identical to
//! the per-sample-alloc path for both workloads.
//!
//! Runs the same tiny dataset through the pipeline twice — pooling on
//! (recycled batch tensors, in-place `decode_into`) and pooling off
//! (`pool_capacity = 0`: fresh allocation per checkout, the seed-era
//! behaviour) — and compares a checksum of every batch tensor plus its
//! labels and indices. Any divergence exits nonzero; `scripts/ci.sh`
//! runs this so the zero-copy path can never silently drift.
//!
//! ```text
//! cargo run --release --example zero_copy
//! ```

use sciml_core::api::{build_pipeline, DatasetBuilder, EncodedFormat};
use sciml_core::codec::Op;
use sciml_core::data::cosmoflow::CosmoFlowConfig;
use sciml_core::data::deepcam::DeepCamConfig;
use sciml_core::pipeline::decoder::{CosmoPluginCpu, DeepCamPluginCpu};
use sciml_core::pipeline::{DecoderPlugin, PipelineConfig};
use std::process::ExitCode;
use std::sync::Arc;

fn config(pool_capacity: Option<usize>) -> PipelineConfig {
    PipelineConfig {
        batch_size: 4,
        reader_threads: 2,
        decode_threads: 2,
        prefetch: 4,
        epochs: 2,
        seed: 99,
        drop_remainder: false,
        pool_capacity,
    }
}

/// Per-batch checksum: a wrapping fold over the tensor bits, the epoch,
/// the sample indices, and the label bits. Sorted before returning:
/// batch *composition* is deterministic (positional scheduling), but
/// delivery order across an epoch boundary is not.
fn checksums(
    blobs: &[Vec<u8>],
    plugin: Arc<dyn DecoderPlugin>,
    pool_capacity: Option<usize>,
) -> Vec<u64> {
    let mut p = build_pipeline(blobs.to_vec(), plugin, config(pool_capacity)).expect("launch");
    let mut sums = Vec::new();
    while let Some(b) = p.next_batch().expect("batch") {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ b.epoch as u64;
        for &v in b.data.iter() {
            h = h
                .wrapping_mul(0x100_0000_01b3)
                .wrapping_add(v.to_bits() as u64);
        }
        for &i in &b.indices {
            h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(i as u64);
        }
        for l in &b.labels {
            match l {
                sciml_core::pipeline::Label::Cosmo(t) => {
                    for &x in t {
                        h = h
                            .wrapping_mul(0x100_0000_01b3)
                            .wrapping_add(x.to_bits() as u64);
                    }
                }
                sciml_core::pipeline::Label::Mask(m) => {
                    for &x in m {
                        h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(x as u64);
                    }
                }
            }
        }
        sums.push(h);
        // Batch dropped here so its tensor recycles, as in training.
    }
    sums.sort_unstable();
    sums
}

fn main() -> ExitCode {
    let mut ok = true;
    let cosmo_cfg = CosmoFlowConfig::test_small();
    let cosmo = DatasetBuilder::cosmoflow(cosmo_cfg).build(10, EncodedFormat::Custom);
    let deepcam =
        DatasetBuilder::deepcam(DeepCamConfig::test_small()).build(10, EncodedFormat::Custom);
    let cosmo_plugin: Arc<dyn DecoderPlugin> = Arc::new(CosmoPluginCpu { op: Op::Log1p });
    let deepcam_plugin: Arc<dyn DecoderPlugin> = Arc::new(DeepCamPluginCpu { op: Op::Identity });
    let workloads = [
        ("cosmoflow", &cosmo, cosmo_plugin),
        ("deepcam", &deepcam, deepcam_plugin),
    ];
    for (name, blobs, plugin) in workloads {
        let pooled = checksums(blobs, Arc::clone(&plugin), None);
        let unpooled = checksums(blobs, plugin, Some(0));
        let digest = pooled
            .iter()
            .fold(0u64, |a, &h| a.wrapping_mul(31).wrapping_add(h));
        if pooled == unpooled {
            println!(
                "{name:<10} OK  {} batches, digest {digest:016x} (pooled == unpooled)",
                pooled.len()
            );
        } else {
            eprintln!(
                "{name:<10} MISMATCH: pooled {:016x?} vs unpooled {:016x?}",
                pooled, unpooled
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
