#!/usr/bin/env bash
# Tier-1 verification: format, lint, build, test. Run from anywhere;
# operates on the repository containing this script. Prints a per-stage
# wall-time summary on exit (also after a failure, for the stages that
# completed).
set -euo pipefail
cd "$(dirname "$0")/.."

STAGE_NAMES=()
STAGE_TIMES=()
current_stage=""
stage_start=0

stage_end() {
    if [[ -n "$current_stage" ]]; then
        STAGE_NAMES+=("$current_stage")
        STAGE_TIMES+=($((SECONDS - stage_start)))
        current_stage=""
    fi
}

stage() {
    stage_end
    current_stage="$1"
    stage_start=$SECONDS
    echo "==> $1"
}

finish() {
    stage_end
    rm -rf "${obs_dir:-}" "${store_dir:-}" "${tel_dir:-}"
    if [[ ${#STAGE_NAMES[@]} -gt 0 ]]; then
        echo
        echo "stage wall times:"
        local i
        for i in "${!STAGE_NAMES[@]}"; do
            printf '  %4ds  %s\n' "${STAGE_TIMES[$i]}" "${STAGE_NAMES[$i]}"
        done
        printf '  %4ds  total\n' "$SECONDS"
    fi
}
trap 'finish' EXIT

stage "cargo fmt --check"
cargo fmt --all -- --check

stage "cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

stage "cargo build --release"
cargo build --workspace --release

stage "sciml-lint (token rules + call-graph effects + unsafe inventory)"
# Scans crates/ AND shims/ (the shim layer carries its own waivers).
# Fails on any non-baselined violation, on stale baseline entries
# (fixed code whose grandfather budget was not ratcheted down), and on
# any unsafe site missing from — or edited since — the generated
# inventory in lint.toml.
cargo run --release -q -p sciml-analyze --bin sciml-lint -- --path .

stage "lint self-test (planted fixture must FAIL the gate)"
# The fixture plants a 3-deep transitive panic chain and an unsafe
# block that its (empty) inventory does not record; a zero exit here
# means the gate has stopped gating.
if cargo run --release -q -p sciml-analyze --bin sciml-lint -- \
    --path crates/analyze/tests/fixtures/planted \
    --config crates/analyze/tests/fixtures/planted/lint.toml >/dev/null 2>&1; then
    echo "ERROR: planted lint fixture did not fail the gate" >&2
    exit 1
fi

stage "cargo test"
cargo test --workspace -q

stage "lockcheck-test (lock-order inversion detector enabled)"
# Rebuilds the parking_lot shim with the dynamic ABBA detector compiled
# in (panic-on-inversion under test) and re-runs the lock-heavy crates.
# A separate target dir keeps the instrumented artifacts from evicting
# the normal build cache.
RUSTFLAGS="--cfg lockcheck" CARGO_TARGET_DIR=target/lockcheck \
    cargo test -q -p parking_lot -p sciml-obs -p sciml-serve -p sciml-pipeline -p sciml-store

stage "cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

stage "observability smoke"
obs_dir="$(mktemp -d)"
cargo run --release --example observability -- \
    --trace-out "$obs_dir/trace.json" --metrics-out "$obs_dir/metrics.jsonl"
# The emitted trace and metrics must parse as JSON / JSONL.
cargo run --release -p sciml-bench --bin sciml -- validate-json \
    "$obs_dir/trace.json" "$obs_dir/metrics.jsonl"

stage "pooled-pipeline smoke (zero-copy vs per-sample-alloc checksums)"
# Pooling on vs off must produce byte-identical batches for both
# workloads; the example exits nonzero on any divergence.
cargo run --release --example zero_copy

stage "store pack -> stage -> fetch smoke"
store_dir="$(mktemp -d)"
sciml() { cargo run --release -q -p sciml-bench --bin sciml -- "$@"; }
# Pack a tiny synthetic dataset, verify it, serve it over loopback,
# stage it through the server, and check the staged copy is itself a
# complete CRC-clean store whose decoded samples round-trip.
sciml gen cosmo --out "$store_dir/data" --n 8 --grid 16
sciml pack --dir "$store_dir/data" --n 8 --out "$store_dir/packed" --shard-mb 1 --encoding pack
sciml verify-store "$store_dir/packed"
sciml serve --store "$store_dir/packed" --addr 127.0.0.1:7979 &
serve_pid=$!
for _ in $(seq 50); do
    if sciml fetch --addr 127.0.0.1:7979 --indices 0 >/dev/null 2>&1; then break; fi
    sleep 0.2
done
sciml stage --addr 127.0.0.1:7979 --out "$store_dir/staged" --workers 2
sciml verify-store "$store_dir/staged"
sciml fetch --addr 127.0.0.1:7979 --all --stats
sciml fetch --addr 127.0.0.1:7979 --shutdown
wait "$serve_pid" || true
# Serve the staged copy and pull every sample back out: the bytes must
# match the original per-file dataset exactly, and still decode.
sciml serve --store "$store_dir/staged" --addr 127.0.0.1:7980 &
serve_pid=$!
for _ in $(seq 50); do
    if sciml fetch --addr 127.0.0.1:7980 --indices 0 >/dev/null 2>&1; then break; fi
    sleep 0.2
done
sciml fetch --addr 127.0.0.1:7980 --all --out "$store_dir/fetched"
sciml fetch --addr 127.0.0.1:7980 --shutdown
wait "$serve_pid" || true
for f in "$store_dir"/data/sample_*.bin; do
    cmp "$f" "$store_dir/fetched/$(basename "$f")"
done
sciml verify "$store_dir/fetched/sample_000000.bin"

stage "telemetry plane smoke (traced fetch, scrape, merged trace, attribution)"
tel_dir="$(mktemp -d)"
# Serve the packed store with server-side tracing and a Prometheus
# scrape endpoint alongside the wire port.
sciml serve --store "$store_dir/packed" --addr 127.0.0.1:7981 \
    --metrics-addr 127.0.0.1:9091 --trace-out "$tel_dir/server_trace.json" &
serve_pid=$!
for _ in $(seq 50); do
    if sciml fetch --addr 127.0.0.1:7981 --indices 0 >/dev/null 2>&1; then break; fi
    sleep 0.2
done
# Traced decode run: protocol v5 carries the client's trace context in
# every request, so the server's spans join the client's trace; the
# sampler writes the final bottleneck-attribution report.
sciml fetch --addr 127.0.0.1:7981 --all --decode cosmo \
    --trace-out "$tel_dir/client_trace.json" \
    --metrics-text "$tel_dir/client_metrics.prom" \
    --attribution-out "$tel_dir/attribution.json"
# The live scrape must parse and expose the serve / store / obs
# families with the traffic we just generated.
sciml scrape --addr 127.0.0.1:9091 \
    --require serve_requests,serve_request_ns,store_decode_pack,obs_trace_dropped_spans
sciml fetch --addr 127.0.0.1:7981 --shutdown
wait "$serve_pid" || true
# Both per-process traces merge into one timeline, and everything the
# plane emitted is well-formed JSON.
sciml trace-merge --out "$tel_dir/merged_trace.json" \
    "$tel_dir/client_trace.json" "$tel_dir/server_trace.json"
sciml validate-json "$tel_dir/merged_trace.json" "$tel_dir/attribution.json" \
    "$tel_dir/client_trace.json" "$tel_dir/server_trace.json"

stage "reactor soak (512 concurrent connections + connection-lifecycle scrape)"
# Raise the fd ceiling where permitted: 512 client sockets + 512 server
# sockets + headroom live in this stage.
ulimit -n 8192 2>/dev/null || true
sciml serve --store "$store_dir/packed" --addr 127.0.0.1:7982 \
    --max-conns 600 --metrics-addr 127.0.0.1:9092 &
serve_pid=$!
for _ in $(seq 50); do
    if sciml fetch --addr 127.0.0.1:7982 --indices 0 >/dev/null 2>&1; then break; fi
    sleep 0.2
done
# Hold 512 negotiated connections open simultaneously against the
# reactor engine, fetch on every one, and require a clean close.
sciml soak --addr 127.0.0.1:7982 --conns 512 --fetches 2
# The connection-lifecycle families must be present and well-formed in
# the Prometheus exposition after the soak.
sciml scrape --addr 127.0.0.1:9092 \
    --require serve_conn_active,serve_conn_accepted,serve_conn_rejected_busy,serve_conn_drained,serve_requests
sciml fetch --addr 127.0.0.1:7982 --shutdown
wait "$serve_pid" || true
# Offline placement preview: the consistent-hash planner must produce a
# valid plan for a 3-node layout without any server running.
sciml cluster-plan --nodes 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
    --n 256 --per-shard 32 --replication 2

stage "compression shootout bench (raw vs gzip vs pack)"
# Emits results/BENCH_compress_ratio.json: per-workload compression
# ratio and decode throughput for each payload encoding.
cargo bench -q -p sciml-bench --bench bench_compress

stage "simd-matrix (codec + half suites at every supported tier)"
# The dispatcher honors SCIML_SIMD, so the same test binaries prove
# bit-exactness of the scalar, SSE4.2, and (where present) AVX2/NEON
# kernels. `cpu-features --list` names only the tiers this host can
# execute, so the matrix is exact on any machine.
for tier in $(sciml cpu-features --list); do
    echo "    -- SCIML_SIMD=$tier"
    SCIML_SIMD="$tier" cargo test -q -p sciml-codec -p sciml-half -p sciml-pipeline
done
sciml cpu-features

stage "decode thread-scaling bench (per kernel x ISA)"
# Emits results/BENCH_decode_scaling.json: per-thread decode throughput,
# scaling efficiency, and each vector tier's speedup over scalar.
cargo bench -q -p sciml-bench --bench bench_decode_scaling

stage_end
echo "==> CI OK"
