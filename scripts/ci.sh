#!/usr/bin/env bash
# Tier-1 verification: format, lint, build, test. Run from anywhere;
# operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> CI OK"
