#!/usr/bin/env bash
# Tier-1 verification: format, lint, build, test. Run from anywhere;
# operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> observability smoke"
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
cargo run --release --example observability -- \
    --trace-out "$obs_dir/trace.json" --metrics-out "$obs_dir/metrics.jsonl"
# The emitted trace and metrics must parse as JSON / JSONL.
cargo run --release -p sciml-bench --bin sciml -- validate-json \
    "$obs_dir/trace.json" "$obs_dir/metrics.jsonl"

echo "==> CI OK"
