//! Std-only shim for the subset of the `criterion` API this workspace's
//! benches use. It is a real (if simple) measurement harness, not a
//! no-op: each benchmark runs a warmup pass, then timed samples, and
//! prints mean / min / max plus derived throughput. There is no
//! statistical outlier analysis or HTML report — just honest wall-clock
//! numbers on stdout.

//! Setting `SCIML_BENCH_OUT_DIR=DIR` additionally writes one
//! `BENCH_<id>.json` snapshot per benchmark into `DIR` — the
//! machine-readable record the figures/CI tooling diffs across runs.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Environment variable naming the directory for JSON bench snapshots.
pub const BENCH_OUT_ENV: &str = "SCIML_BENCH_OUT_DIR";

/// Opaque-to-the-optimizer value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

/// Throughput basis for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Per-iteration timing callback target.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples after one warmup.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warmup / lazy-init pass
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Writes `BENCH_<id>.json` under `$SCIML_BENCH_OUT_DIR`, if set. JSON
/// is emitted by hand — the shim stays dependency-free — in the same
/// `{"label": …, "entries": [{metric, value, unit}…]}` shape the
/// `sciml-obs` exporter uses.
fn maybe_write_snapshot(
    id: &str,
    mean: Duration,
    min: Duration,
    max: Duration,
    throughput: Option<Throughput>,
) {
    let Ok(dir) = std::env::var(BENCH_OUT_ENV) else {
        return;
    };
    let mut entries = vec![
        ("mean_ns", mean.as_nanos() as f64, "ns"),
        ("min_ns", min.as_nanos() as f64, "ns"),
        ("max_ns", max.as_nanos() as f64, "ns"),
    ];
    match throughput {
        Some(Throughput::Bytes(b)) => {
            entries.push(("bytes_per_sec", b as f64 / mean.as_secs_f64(), "B/s"));
        }
        Some(Throughput::Elements(n)) => {
            entries.push(("elements_per_sec", n as f64 / mean.as_secs_f64(), "elem/s"));
        }
        None => {}
    }
    let body: Vec<String> = entries
        .iter()
        .map(|(m, v, u)| format!("{{\"metric\":\"{m}\",\"value\":{v},\"unit\":\"{u}\"}}"))
        .collect();
    let label: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let json = format!(
        "{{\"label\":\"{label}\",\"entries\":[{}]}}\n",
        body.join(",")
    );
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = std::path::Path::new(&dir).join(format!("BENCH_{label}.json"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion shim: cannot write {path:?}: {e}");
        }
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    maybe_write_snapshot(id, mean, min, max, throughput);
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let per_s = b as f64 / mean.as_secs_f64();
            format!("  {:.1} MiB/s", per_s / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            let per_s = n as f64 / mean.as_secs_f64();
            format!("  {:.2} Melem/s", per_s / 1e6)
        }
        None => String::new(),
    };
    println!(
        "{id:<40} time: [{} {} {}]{rate}",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
    );
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let samples = run_bench(self.sample_size, f);
        report(&id.to_string(), &samples, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

fn run_bench(sample_size: usize, mut f: impl FnMut(&mut Bencher)) -> Vec<Duration> {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.samples
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput basis.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let samples = run_bench(self.sample_size, f);
        report(&format!("{}/{id}", self.name), &samples, self.throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let samples = run_bench(self.sample_size, |b| f(b, input));
        report(&format!("{}/{id}", self.name), &samples, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; this harness has no
            // options, so arguments are accepted and ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let samples = run_bench(5, |b| b.iter(|| black_box(2 + 2)));
        assert_eq!(samples.len(), 5);
    }

    #[test]
    fn snapshot_file_written_when_env_set() {
        let dir = std::env::temp_dir().join("criterion_shim_snapshot_test");
        let _ = std::fs::remove_dir_all(&dir);
        // Env mutation is process-global; this is the only test that
        // sets it, and it unsets before returning.
        std::env::set_var(BENCH_OUT_ENV, &dir);
        maybe_write_snapshot(
            "grp/case-1",
            Duration::from_micros(5),
            Duration::from_micros(4),
            Duration::from_micros(6),
            Some(Throughput::Bytes(1024)),
        );
        std::env::remove_var(BENCH_OUT_ENV);
        let json = std::fs::read_to_string(dir.join("BENCH_grp_case_1.json")).expect("snapshot");
        assert!(json.contains("\"label\":\"grp_case_1\""));
        assert!(json.contains("\"metric\":\"mean_ns\""));
        assert!(json.contains("\"metric\":\"bytes_per_sec\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::from_parameter("x"), &4u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                black_box(x * 2)
            })
        });
        g.finish();
        assert!(runs >= 3);
    }
}
