//! Std-only shim for the subset of `crossbeam-channel` this workspace
//! uses: bounded and unbounded MPMC channels with cloneable senders
//! *and* receivers, blocking `send`/`recv`, and disconnect semantics —
//! `send` fails once every receiver is gone, `recv` fails once every
//! sender is gone and the queue has drained.
//!
//! Built on `Mutex<VecDeque>` + two `Condvar`s. Throughput is below
//! crossbeam's lock-free implementation, but the pipeline moves large
//! sample payloads at small message rates, so the lock is nowhere near
//! contention.

use std::collections::VecDeque;
use std::fmt;
// lint:allow(no_std_sync): this shim IS the sanctioned sync layer the rule routes callers to
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half; clone freely.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; clone freely (messages go to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// The channel is disconnected (no receivers); returns the message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The channel is empty and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Why `try_recv` returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue is currently empty; senders still exist.
    Empty,
    /// Queue is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel empty"),
            TryRecvError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Why `recv_timeout` returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed first.
    Timeout,
    /// Queue is empty and every sender is gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("channel recv timed out"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Creates a bounded MPMC channel holding at most `cap` messages
/// (`cap == 0` is treated as capacity 1; this shim has no rendezvous
/// mode, and the workspace never uses zero-capacity channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
    shared
        .state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<T> Sender<T> {
    /// Messages currently queued (racy by nature; a snapshot for
    /// depth gauges, not synchronization).
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// Whether the queue is currently empty (same snapshot caveat as
    /// [`Sender::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until the message is enqueued or every receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.shared);
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match st.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .shared
                        .not_full
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared);
        st.senders -= 1;
        let disconnected = st.senders == 0;
        drop(st);
        if disconnected {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Messages currently queued (racy by nature; a snapshot for
    /// depth gauges, not synchronization).
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// Whether the queue is currently empty (same snapshot caveat as
    /// [`Receiver::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until a message arrives or every sender is gone and the
    /// queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock(&self.shared);
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = lock(&self.shared);
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.shared);
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared);
        st.receivers -= 1;
        let disconnected = st.receivers == 0;
        drop(st);
        if disconnected {
            // Wake senders blocked on a full queue so they observe the
            // disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_in_order_spsc() {
        let (tx, rx) = bounded(2);
        let h = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        h.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded(4);
        let mut senders = Vec::new();
        for s in 0..3 {
            let tx = tx.clone();
            senders.push(thread::spawn(move || {
                for i in 0..50 {
                    tx.send(s * 50 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            receivers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        let mut all: Vec<i32> = Vec::new();
        for r in receivers {
            all.extend(r.join().unwrap());
        }
        for s in senders {
            s.join().unwrap();
        }
        all.sort_unstable();
        assert_eq!(all, (0..150).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_when_receiver_dropped() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(0).unwrap();
        let h = thread::spawn(move || tx.send(1));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(h.join().unwrap().is_err());
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = bounded::<u32>(1);
        let r = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn capacity_is_respected() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let h = thread::spawn(move || {
            tx.send(3).unwrap(); // must block until a recv happens
            std::time::Instant::now()
        });
        thread::sleep(Duration::from_millis(30));
        let before = Instant::now();
        assert_eq!(rx.recv().unwrap(), 1);
        let sent_at = h.join().unwrap();
        assert!(
            sent_at >= before,
            "third send completed before a recv freed space"
        );
    }
}
