//! Std-only shim for the subset of `parking_lot` this workspace uses:
//! `Mutex`, `RwLock`, and `Condvar` with panic-free (non-poisoning)
//! guards. Wraps the std primitives and recovers from poisoning instead
//! of propagating it, matching parking_lot's no-poisoning semantics.
//!
//! Built with `--cfg lockcheck` (see `scripts/ci.sh`'s `lockcheck-test`
//! stage) every lock additionally carries its creation site and every
//! acquisition feeds the [`lockcheck`] lock-order detector, which
//! reports ABBA ordering inversions at acquisition time — before the
//! threads ever deadlock. Without the cfg the lock types are plain
//! newtypes over `std::sync` and the detector compiles out entirely:
//! the guards *are* the std guards and no extra state or atomics exist
//! on the fast path (asserted by `disabled_lockcheck_is_free`).

use std::fmt;
use std::sync::{self};

#[cfg(lockcheck)]
pub mod lockcheck;

/// Disabled detector stub: same API surface as the real
/// `--cfg lockcheck` module so callers (e.g. the `sciml-obs` metrics
/// bridge) compile identically either way, but every operation is a
/// const no-op.
#[cfg(not(lockcheck))]
pub mod lockcheck {
    use std::fmt;

    /// What to do when an ordering cycle is detected (unused while the
    /// detector is compiled out).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Mode {
        /// Panic with the report (test builds).
        Panic,
        /// Count the cycle and retain the report (production builds).
        Count,
    }

    /// Point-in-time detector statistics (all zero when disabled).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct Stats {
        /// Distinct lock-creation sites seen acquiring.
        pub sites: u64,
        /// Distinct ordering edges observed.
        pub edges: u64,
        /// Ordering cycles (potential deadlocks) detected.
        pub cycles: u64,
        /// Total instrumented acquisitions.
        pub acquisitions: u64,
        /// Nested acquisitions of two locks created at the same site.
        pub same_site_nesting: u64,
    }

    /// One detected lock-order inversion (never produced while the
    /// detector is compiled out).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct DeadlockReport {
        /// Site of a lock the thread already holds.
        pub held: String,
        /// Site of the lock whose acquisition closes the cycle.
        pub acquiring: String,
        /// Observed ordering chain proving the inversion.
        pub path: Vec<String>,
    }

    impl fmt::Display for DeadlockReport {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "lock-order inversion: acquiring {} while holding {}",
                self.acquiring, self.held
            )
        }
    }

    /// False: this build compiled the detector out.
    pub const fn enabled() -> bool {
        false
    }

    /// No-op while disabled.
    pub fn set_mode(_mode: Mode) {}

    /// All-zero statistics while disabled.
    pub fn stats() -> Stats {
        Stats::default()
    }

    /// Always `None` while disabled.
    pub fn take_last_report() -> Option<DeadlockReport> {
        None
    }
}

/// Lock-site tag carried by every lock under `--cfg lockcheck`: the
/// `new()` call's source location plus a cached intern id.
#[cfg(lockcheck)]
#[derive(Debug)]
struct Site {
    loc: &'static std::panic::Location<'static>,
    id: std::sync::atomic::AtomicU32,
}

#[cfg(lockcheck)]
impl Site {
    #[track_caller]
    const fn here() -> Self {
        Self {
            loc: std::panic::Location::caller(),
            id: std::sync::atomic::AtomicU32::new(0),
        }
    }

    fn resolve(&self) -> u32 {
        lockcheck::site_id(&self.id, self.loc)
    }
}

/// Guard returned by [`Mutex::lock`]. Without `--cfg lockcheck` this is
/// *exactly* `std::sync::MutexGuard` — no wrapper, no release hook.
#[cfg(not(lockcheck))]
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Guard returned by [`RwLock::read`].
#[cfg(not(lockcheck))]
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// Guard returned by [`RwLock::write`].
#[cfg(not(lockcheck))]
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Instrumented mutex guard: releases its site in the lock-order
/// detector on drop. `inner` is `None` only transiently inside
/// [`Condvar::wait`].
#[cfg(lockcheck)]
pub struct MutexGuard<'a, T: ?Sized> {
    site: u32,
    inner: Option<sync::MutexGuard<'a, T>>,
}

/// Instrumented shared read guard.
#[cfg(lockcheck)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    site: u32,
    inner: Option<sync::RwLockReadGuard<'a, T>>,
}

/// Instrumented exclusive write guard.
#[cfg(lockcheck)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    site: u32,
    inner: Option<sync::RwLockWriteGuard<'a, T>>,
}

#[cfg(lockcheck)]
macro_rules! instrumented_guard {
    ($name:ident, $std:ident, $($mutability:tt)?) => {
        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;

            fn deref(&self) -> &T {
                self.inner.as_ref().expect("guard holds the lock")
            }
        }

        $(
            impl<T: ?Sized> std::ops::$mutability for $name<'_, T> {
                fn deref_mut(&mut self) -> &mut T {
                    self.inner.as_mut().expect("guard holds the lock")
                }
            }
        )?

        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                // `inner` is only `None` mid-`Condvar::wait`, where the
                // site was already released.
                if self.inner.is_some() {
                    lockcheck::on_release(self.site);
                }
            }
        }

        impl<T: ?Sized + fmt::Debug> fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&**self, f)
            }
        }
    };
}

#[cfg(lockcheck)]
instrumented_guard!(MutexGuard, MutexGuard, DerefMut);
#[cfg(lockcheck)]
instrumented_guard!(RwLockReadGuard, RwLockReadGuard,);
#[cfg(lockcheck)]
instrumented_guard!(RwLockWriteGuard, RwLockWriteGuard, DerefMut);

/// Non-poisoning mutex (API subset of `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized> {
    #[cfg(lockcheck)]
    site: Site,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    #[cfg_attr(lockcheck, track_caller)]
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(lockcheck)]
            site: Site::here(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning — a panicked holder's state is simply exposed. Under
    /// `--cfg lockcheck` the acquisition is checked against the global
    /// lock-order graph *before* blocking, so an ABBA inversion reports
    /// instead of deadlocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(lockcheck)]
        {
            let site = self.site.resolve();
            lockcheck::on_acquire(site);
            MutexGuard {
                site,
                inner: Some(
                    self.inner
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()),
                ),
            }
        }
        #[cfg(not(lockcheck))]
        {
            self.inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(lockcheck)]
        {
            let site = self.site.resolve();
            lockcheck::on_acquire_try(site);
            Some(MutexGuard {
                site,
                inner: Some(inner),
            })
        }
        #[cfg(not(lockcheck))]
        {
            Some(inner)
        }
    }

    /// Exclusive access through a `&mut` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    #[cfg_attr(lockcheck, track_caller)]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Non-poisoning reader-writer lock (API subset of
/// `parking_lot::RwLock`).
pub struct RwLock<T: ?Sized> {
    #[cfg(lockcheck)]
    site: Site,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    #[cfg_attr(lockcheck, track_caller)]
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(lockcheck)]
            site: Site::here(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(lockcheck)]
        {
            let site = self.site.resolve();
            lockcheck::on_acquire(site);
            RwLockReadGuard {
                site,
                inner: Some(
                    self.inner
                        .read()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()),
                ),
            }
        }
        #[cfg(not(lockcheck))]
        {
            self.inner
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(lockcheck)]
        {
            let site = self.site.resolve();
            lockcheck::on_acquire(site);
            RwLockWriteGuard {
                site,
                inner: Some(
                    self.inner
                        .write()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()),
                ),
            }
        }
        #[cfg(not(lockcheck))]
        {
            self.inner
                .write()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    #[cfg_attr(lockcheck, track_caller)]
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// Condition variable paired with [`Mutex`]. Unlike real parking_lot's
/// by-reference `wait(&mut guard)`, this shim keeps std's consuming
/// signature (`wait(guard) -> guard`) since it wraps `std::sync`
/// primitives underneath.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Atomically releases `guard` and blocks until notified, then
    /// reacquires the lock. Never panics on poisoning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(lockcheck)]
        {
            let mut guard = guard;
            let std_guard = guard.inner.take().expect("guard holds the lock");
            lockcheck::on_release(guard.site);
            let std_guard = self
                .inner
                .wait(std_guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            // The lock is already reacquired here, so this records the
            // reacquisition in the held stack / order graph post hoc —
            // good enough for ordering edges, though a true inversion
            // through a condvar reacquisition blocks before reporting.
            lockcheck::on_acquire(guard.site);
            guard.inner = Some(std_guard);
            guard
        }
        #[cfg(not(lockcheck))]
        {
            self.inner
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
            *ready
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}

/// The no-op-overhead contract: with lockcheck compiled out, the lock
/// types carry no extra state and the guards are the std guards
/// themselves — no wrapper type, no release hook, no atomics on the
/// acquire/release fast path.
#[cfg(all(test, not(lockcheck)))]
mod disabled_tests {
    use super::*;

    #[test]
    fn disabled_lockcheck_is_free() {
        assert!(!lockcheck::enabled());
        assert_eq!(lockcheck::stats(), lockcheck::Stats::default());
        assert_eq!(
            std::mem::size_of::<Mutex<u64>>(),
            std::mem::size_of::<std::sync::Mutex<u64>>(),
            "disabled lockcheck must add no per-lock state"
        );
        assert_eq!(
            std::mem::size_of::<RwLock<u64>>(),
            std::mem::size_of::<std::sync::RwLock<u64>>(),
        );
        // Type-identity proof that the guard is std's guard (so drop
        // runs no instrumentation): the shim guard typechecks where a
        // `std::sync::MutexGuard` is required.
        fn std_guard(g: std::sync::MutexGuard<'_, u64>) -> std::sync::MutexGuard<'_, u64> {
            g
        }
        let m = Mutex::new(7u64);
        assert_eq!(*std_guard(m.lock()), 7);
        // A detected report can never exist in this configuration.
        assert!(lockcheck::take_last_report().is_none());
    }
}

#[cfg(all(test, lockcheck))]
mod lockcheck_tests {
    use super::lockcheck::{self, Mode};
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    /// Mode changes and panic-hook swaps are process-global; tests that
    /// touch them serialize here.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Runs `f` expecting a panic, with the default hook silenced so
    /// the expected report does not spam test output. Returns the
    /// panic message.
    fn expect_panic_message<F: FnOnce()>(f: F) -> String {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(AssertUnwindSafe(f));
        std::panic::set_hook(prev);
        let payload = result.expect_err("expected a lockcheck panic");
        match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(payload) => match payload.downcast::<&'static str>() {
                Ok(s) => (*s).to_string(),
                Err(_) => String::from("<non-string panic payload>"),
            },
        }
    }

    #[test]
    fn enabled_and_instrumented() {
        assert!(lockcheck::enabled());
        let m = Mutex::new(0u8);
        let before = lockcheck::stats().acquisitions;
        drop(m.lock());
        assert!(lockcheck::stats().acquisitions > before);
    }

    #[test]
    fn abba_inversion_panics_naming_both_sites() {
        let _serial = serial();
        lockcheck::set_mode(Mode::Panic);
        let (a, line_a) = (Mutex::new(0u8), line!());
        let (b, line_b) = (Mutex::new(0u8), line!());
        // Establish the order A -> B.
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // The inversion B -> A must be reported at acquisition time —
        // single-threaded, no contention, no actual deadlock needed.
        let msg = expect_panic_message(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        });
        let site_a = format!("{}:{}", file!(), line_a);
        let site_b = format!("{}:{}", file!(), line_b);
        assert!(
            msg.contains(&site_a) && msg.contains(&site_b),
            "report must name both sites ({site_a}, {site_b}): {msg}"
        );
        assert!(msg.contains("lock-order inversion"), "typed report: {msg}");
    }

    #[test]
    fn count_mode_retains_report_without_panicking() {
        let _serial = serial();
        lockcheck::set_mode(Mode::Count);
        let c = Mutex::new(0u8);
        let d = Mutex::new(0u8);
        {
            let _gc = c.lock();
            let _gd = d.lock();
        }
        let cycles_before = lockcheck::stats().cycles;
        {
            let _gd = d.lock();
            let _gc = c.lock(); // inversion: counted, not fatal
        }
        assert_eq!(lockcheck::stats().cycles, cycles_before + 1);
        let report = lockcheck::take_last_report().expect("report retained");
        assert!(report.held.contains(file!()));
        assert!(report.acquiring.contains(file!()));
        assert!(!report.path.is_empty());
        lockcheck::set_mode(Mode::Panic);
    }

    #[test]
    fn consistent_nesting_never_reports() {
        let _serial = serial();
        lockcheck::set_mode(Mode::Panic);
        let outer = Mutex::new(0u8);
        let inner = Mutex::new(0u8);
        let cycles_before = lockcheck::stats().cycles;
        for _ in 0..16 {
            let _go = outer.lock();
            let _gi = inner.lock();
        }
        assert_eq!(lockcheck::stats().cycles, cycles_before);
    }

    #[test]
    fn same_site_nesting_is_counted_not_fatal() {
        let _serial = serial();
        lockcheck::set_mode(Mode::Panic);
        // Two instances born at one site (think per-dataset locks made
        // in a loop): nesting them is not provably an inversion.
        let make = |v: u8| Mutex::new(v);
        let x = make(1);
        let y = make(2);
        let before = lockcheck::stats().same_site_nesting;
        {
            let _gx = x.lock();
            let _gy = y.lock();
        }
        assert!(lockcheck::stats().same_site_nesting > before);
    }

    #[test]
    fn rwlock_participates_in_ordering() {
        let _serial = serial();
        lockcheck::set_mode(Mode::Panic);
        let (rw, line_rw) = (RwLock::new(0u8), line!());
        let (m, line_m) = (Mutex::new(0u8), line!());
        {
            let _gr = rw.read();
            let _gm = m.lock();
        }
        let msg = expect_panic_message(|| {
            let _gm = m.lock();
            let _gw = rw.write();
        });
        assert!(msg.contains(&format!("{}:{}", file!(), line_rw)));
        assert!(msg.contains(&format!("{}:{}", file!(), line_m)));
    }

    #[test]
    fn condvar_wait_keeps_held_stack_balanced() {
        let _serial = serial();
        lockcheck::set_mode(Mode::Panic);
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut n = lock.lock();
            while *n < 3 {
                n = cv.wait(n);
            }
            *n
        });
        let (lock, cv) = &*pair;
        for _ in 0..3 {
            *lock.lock() += 1;
            cv.notify_all();
        }
        assert_eq!(waiter.join().unwrap(), 3);
    }

    #[test]
    fn out_of_order_guard_drops_release_correctly() {
        let _serial = serial();
        lockcheck::set_mode(Mode::Panic);
        let p = Mutex::new(0u8);
        let q = Mutex::new(0u8);
        // Drop p's guard before q's (non-LIFO) — the held stack must
        // remove the right entry, and later orderings must not report.
        let gp = p.lock();
        let gq = q.lock();
        drop(gp);
        drop(gq);
        let _gp = p.lock();
        let _gq = q.lock();
    }
}
