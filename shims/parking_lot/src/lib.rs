//! Std-only shim for the subset of `parking_lot` this workspace uses:
//! `Mutex` and `RwLock` with panic-free (non-poisoning) guards. Wraps
//! the std primitives and recovers from poisoning instead of
//! propagating it, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (API subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning — a panicked holder's state is simply exposed.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access through a `&mut` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Non-poisoning reader-writer lock (API subset of
/// `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
