//! Dynamic lock-order (deadlock-potential) detector.
//!
//! Compiled in only under `--cfg lockcheck`; without the cfg this
//! module is a set of inlinable no-ops and the lock types carry no
//! extra state, so the disabled fast path is byte-identical to the
//! plain shim.
//!
//! ## How it works
//!
//! Every [`Mutex`](crate::Mutex)/[`RwLock`](crate::RwLock) is tagged
//! with the source location of its `new()` call (its *site*, captured
//! via `#[track_caller]`). At acquisition time the guard code
//!
//! 1. interns the site into a small integer id (cached in the lock, so
//!    interning happens once per lock instance),
//! 2. consults a per-thread stack of currently-held sites, and
//! 3. for each held site `H`, records the edge `H → A` (where `A` is
//!    the site being acquired) in a global lock-order graph.
//!
//! If adding `H → A` would close a cycle (i.e. `A` can already reach
//! `H` through previously observed orderings — the classic ABBA
//! inversion), a [`DeadlockReport`] naming both sites and the
//! connecting path is produced *at acquisition time*, before the
//! thread ever blocks. Depending on [`Mode`]:
//!
//! * [`Mode::Panic`] (default in debug builds, i.e. under `cargo
//!   test`): panic with the report, failing the test that exercised
//!   the inverted ordering.
//! * [`Mode::Count`] (default in release builds): the report is
//!   retained for [`take_last_report`] and counted into the stats that
//!   `sciml-obs` exports as `analyze.lockcheck.*`.
//!
//! Same-site nesting (two different lock *instances* created at one
//! source line, acquired nested — e.g. per-dataset locks in a loop) is
//! counted separately, not reported as a cycle: instance-level order
//! cannot be decided from site identity alone, and flagging it would
//! produce false positives on legitimate address-ordered acquisition.
//! `try_lock` acquisitions push the held stack but record no edges: a
//! failed `try_lock` backs off instead of deadlocking, so it cannot
//! close a wait cycle on its own.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
// lint:allow(no_std_sync): the lock-order detector's own state must not recurse into lockcheck
use std::sync::{Mutex, OnceLock};

/// What to do when an ordering cycle is detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Panic with the [`DeadlockReport`] (test builds).
    Panic,
    /// Count the cycle and retain the report (production builds).
    Count,
}

/// Point-in-time detector statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Distinct lock-creation sites seen acquiring.
    pub sites: u64,
    /// Distinct ordering edges observed.
    pub edges: u64,
    /// Ordering cycles (potential deadlocks) detected.
    pub cycles: u64,
    /// Total instrumented acquisitions.
    pub acquisitions: u64,
    /// Nested acquisitions of two locks created at the same site.
    pub same_site_nesting: u64,
}

/// One detected lock-order inversion: acquiring `acquiring` while
/// holding `held` closes a cycle through `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Site of a lock the thread already holds.
    pub held: String,
    /// Site of the lock whose acquisition closes the cycle.
    pub acquiring: String,
    /// Previously observed ordering chain from `acquiring` back to
    /// `held` (each element a site name), proving the inversion.
    pub path: Vec<String>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock-order inversion (potential deadlock): acquiring {} while holding {}; \
             established order {} -> ... -> {} via [{}]",
            self.acquiring,
            self.held,
            self.acquiring,
            self.held,
            self.path.join(" -> ")
        )
    }
}

/// Global intern table + order graph. Uses `std::sync` directly on
/// purpose: the detector must not instrument its own lock.
struct Global {
    /// (file, line, col) -> site id.
    ids: HashMap<(&'static str, u32, u32), u32>,
    /// Site id -> display name.
    names: Vec<String>,
    /// Adjacency: `edges[a]` holds every `b` with observed order a->b.
    edges: Vec<Vec<u32>>,
    edge_count: u64,
}

impl Global {
    fn intern(&mut self, loc: &'static Location<'static>) -> u32 {
        let key = (loc.file(), loc.line(), loc.column());
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.names.len() as u32;
        self.ids.insert(key, id);
        self.names
            .push(format!("{}:{}:{}", loc.file(), loc.line(), loc.column()));
        self.edges.push(Vec::new());
        id
    }

    /// Is `to` reachable from `from` following observed edges? On
    /// success returns the path `from -> ... -> to` as site names.
    fn find_path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut stack = vec![(from, 0usize)];
        let mut parent: HashMap<u32, u32> = HashMap::new();
        let mut visited = vec![false; self.edges.len()];
        visited[from as usize] = true;
        while let Some(&(node, _)) = stack.last() {
            stack.pop();
            for &next in &self.edges[node as usize] {
                if next == to {
                    // Reconstruct from -> ... -> node -> to.
                    let mut path = vec![to, node];
                    let mut cur = node;
                    while let Some(&p) = parent.get(&cur) {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                if !visited[next as usize] {
                    visited[next as usize] = true;
                    parent.insert(next, node);
                    stack.push((next, 0));
                }
            }
        }
        None
    }
}

fn global() -> &'static Mutex<Global> {
    static GLOBAL: OnceLock<Mutex<Global>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        Mutex::new(Global {
            ids: HashMap::new(),
            names: Vec::new(),
            edges: Vec::new(),
            edge_count: 0,
        })
    })
}

// Mode encoding: 0 = unset (derive from debug_assertions), 1 = panic,
// 2 = count.
static MODE: AtomicU8 = AtomicU8::new(0);
static ACQUISITIONS: AtomicU64 = AtomicU64::new(0);
static CYCLES: AtomicU64 = AtomicU64::new(0);
static SAME_SITE: AtomicU64 = AtomicU64::new(0);

static LAST_REPORT: Mutex<Option<DeadlockReport>> = Mutex::new(None);

thread_local! {
    /// Sites of the locks this thread currently holds, in acquisition
    /// order. Guards may drop out of LIFO order, so releases remove
    /// the *last matching* entry rather than popping blindly.
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// True in builds compiled with `--cfg lockcheck`.
pub const fn enabled() -> bool {
    true
}

/// Overrides the cycle-handling mode (default: [`Mode::Panic`] when
/// `debug_assertions` are on, [`Mode::Count`] otherwise).
pub fn set_mode(mode: Mode) {
    MODE.store(
        match mode {
            Mode::Panic => 1,
            Mode::Count => 2,
        },
        Ordering::Relaxed,
    );
}

fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Panic,
        2 => Mode::Count,
        _ => {
            if cfg!(debug_assertions) {
                Mode::Panic
            } else {
                Mode::Count
            }
        }
    }
}

/// Detector statistics so far (exported by `sciml-obs` as
/// `analyze.lockcheck.*`).
pub fn stats() -> Stats {
    let (sites, edges) = {
        let g = lock_global();
        (g.names.len() as u64, g.edge_count)
    };
    Stats {
        sites,
        edges,
        cycles: CYCLES.load(Ordering::Relaxed),
        acquisitions: ACQUISITIONS.load(Ordering::Relaxed),
        same_site_nesting: SAME_SITE.load(Ordering::Relaxed),
    }
}

/// Takes the most recent [`DeadlockReport`] observed in
/// [`Mode::Count`], if any.
pub fn take_last_report() -> Option<DeadlockReport> {
    lock_std(&LAST_REPORT).take()
}

fn lock_global() -> std::sync::MutexGuard<'static, Global> {
    lock_std(global())
}

/// Non-poisoning lock on the detector's own std mutexes (a panicked
/// holder must not wedge the detector — that would mask the report).
// lint:allow(no_std_sync): detector-internal mutex; poison-tolerant by design
fn lock_std<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Resolves (and caches) the site id for a lock instance.
pub(crate) fn site_id(cache: &AtomicU32, loc: &'static Location<'static>) -> u32 {
    // 0 is "unassigned"; real ids are stored off by one.
    let cached = cache.load(Ordering::Relaxed);
    if cached != 0 {
        return cached - 1;
    }
    let id = lock_global().intern(loc);
    cache.store(id + 1, Ordering::Relaxed);
    id
}

/// Records a blocking acquisition of `site`. Must be called *before*
/// blocking on the underlying primitive so an inversion is reported
/// instead of deadlocking. Pushes the held stack.
pub(crate) fn on_acquire(site: u32) {
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    let report = HELD.with(|held| {
        let held = held.borrow();
        if held.is_empty() {
            return None;
        }
        let mut g = lock_global();
        let mut report = None;
        for &h in held.iter() {
            if h == site {
                SAME_SITE.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if g.edges[h as usize].contains(&site) {
                continue; // edge already known (and known acyclic)
            }
            if let Some(path) = g.find_path(site, h) {
                // Adding h -> site would close a cycle. Report it and
                // leave the graph acyclic so the established order
                // keeps winning in future reports.
                report.get_or_insert_with(|| DeadlockReport {
                    held: g.names[h as usize].clone(),
                    acquiring: g.names[site as usize].clone(),
                    path: path.iter().map(|&s| g.names[s as usize].clone()).collect(),
                });
                continue;
            }
            g.edges[h as usize].push(site);
            g.edge_count += 1;
        }
        report
    });
    if let Some(report) = report {
        CYCLES.fetch_add(1, Ordering::Relaxed);
        *lock_std(&LAST_REPORT) = Some(report.clone());
        if mode() == Mode::Panic {
            // Deliberately *not* pushed onto HELD: the acquisition
            // never happens (we unwind before blocking), so pushing
            // would leave a stale entry behind the catch_unwind that
            // test harnesses wrap around this panic.
            panic!("{report}");
        }
    }
    HELD.with(|held| held.borrow_mut().push(site));
}

/// Records a non-blocking (`try_lock`) acquisition: held-stack only,
/// no ordering edges (a failed try backs off, it cannot deadlock).
pub(crate) fn on_acquire_try(site: u32) {
    ACQUISITIONS.fetch_add(1, Ordering::Relaxed);
    HELD.with(|held| held.borrow_mut().push(site));
}

/// Records the release of `site` (guard drop or condvar wait).
pub(crate) fn on_release(site: u32) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&s| s == site) {
            held.remove(pos);
        }
    });
}
