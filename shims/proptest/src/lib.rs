//! Std-only shim for the subset of the `proptest` API this workspace's
//! property tests use: the `proptest!` macro, range / `any` / `Just` /
//! tuple strategies, `prop_map` / `prop_flat_map`, `prop_oneof!`,
//! `prop::collection::vec`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream, deliberate for an offline environment:
//! no shrinking (a failing case reports the exact generated input
//! instead of a minimized one), no persistence of failing seeds
//! (`proptest-regressions` files are ignored), and case generation is
//! seeded deterministically from the test name so runs are
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    fn from_name(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn next_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

impl TestCaseError {
    /// Failure with a message (mirrors upstream's constructor).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A generator of test values.
///
/// Object-safe so `prop_oneof!` can erase heterogeneous strategy types;
/// the combinators (`prop_map`, …) are provided methods gated on
/// `Self: Sized`.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S2: Strategy, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { base: self, f }
    }

    /// Filters generated values; rejected values count as assumptions.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy { base: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`]. Retries generation up to a bound,
/// then panics (mirrors upstream's local-reject limit).
pub struct FilterStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 consecutive values");
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T: Debug> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    /// Union over the given arms (at least one required).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

// ---------------------------------------------------------------- ranges

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u128;
                let v = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(v as $t as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.abs_diff(lo) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                lo.wrapping_add(v as $t as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ------------------------------------------------------------------ any

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy generating arbitrary values of `T`, including edge cases.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix raw bits with edge values so boundaries get hit.
                match rng.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        match rng.below(10) {
            0 => f32::NAN,
            1 => f32::INFINITY,
            2 => f32::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            5 => f32::MIN_POSITIVE / 2.0, // subnormal
            _ => f32::from_bits(rng.next_u64() as u32),
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(10) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

// ----------------------------------------------------------- collections

/// Collection strategies (`prop::collection` upstream).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --------------------------------------------------------------- runner

/// Drives one property test: generates inputs, runs the body, panics
/// with the offending input on failure.
pub fn run_proptest<S, F>(config: ProptestConfig, name: &str, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::from_name(name, case);
        case += 1;
        let value = strategy.generate(&mut rng);
        let repr = format!("{value:?}");
        match body(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {case}: {msg}\n\
                     input: {repr}"
                );
            }
        }
    }
}

/// Defines property tests. Mirrors upstream's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ( $($strat,)+ );
            $crate::run_proptest(config, stringify!($name), strategy, |values| {
                let ( $($pat,)+ ) = values;
                $body
                Ok(())
            });
        }
    )*};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($arm)),+];
        $crate::Union::new(arms)
    }};
}

/// Asserts inside a property body; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn exact_vec_length(n in 1usize..5, ) {
            let s = prop::collection::vec(0u16..10, n..=n);
            // Generate through a flat-map to exercise the combinator.
            prop_assert!(n >= 1);
            let _ = s;
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![Just(1u8), Just(2u8)], d in (0u8..4).prop_map(|x| x * 2)) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(d % 2 == 0 && d < 8);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn flat_map_dependent_sizes() {
        let strat = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u8..10, n..=n).prop_map(move |v| (n, v)));
        let mut rng = crate::TestRng::from_name("flat_map", 0);
        for _ in 0..50 {
            let (n, v) = crate::Strategy::generate(&strat, &mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_input() {
        crate::run_proptest(
            ProptestConfig::with_cases(10),
            "always_fails",
            (0u8..10,),
            |(_x,)| Err(TestCaseError::fail("forced")),
        );
    }
}
