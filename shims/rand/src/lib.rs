//! Std-only shim for the subset of the `rand 0.8` API this workspace
//! uses. The build environment has no network access to crates.io, so
//! the workspace points `rand` at this path crate instead.
//!
//! The core generator is xoshiro256** seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but the workspace
//! only relies on determinism-per-seed and reasonable uniformity, never
//! on the exact upstream stream.

use std::ops::Range;

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible uniformly from an RNG (stand-in for
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range requires low < high");
        low + (high - low) * f32::draw(rng)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range requires low < high");
        low + (high - low) * f64::draw(rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires low < high");
                let span = high.abs_diff(low) as u128;
                // Modulo bias is negligible at the spans this workspace
                // uses (all far below 2^64).
                let v = (rng.next_u64() as u128) % span;
                low.wrapping_add(v as $t as Self)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256**). Replaces
    /// upstream's ChaCha12-based `StdRng`; same interface, different
    /// (but still high-quality, deterministic) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence utilities (subset of `rand::seq`).
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Slice shuffling and sampling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

/// A generator seeded from system entropy (time + address-space noise);
/// upstream's `thread_rng` stand-in.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let addr = &t as *const _ as u64;
    SeedableRng::seed_from_u64(t ^ addr.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&v));
            let i = r.gen_range(10usize..20);
            assert!((10..20).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn dyn_rngcore_usable_via_rng() {
        let mut r = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let v = dyn_rng.gen::<f32>();
        assert!((0.0..1.0).contains(&v));
    }
}
