//! Std-only shim for the subset of the `rayon` API this workspace uses.
//!
//! Unlike a sequential stand-in, this shim performs *real* fork-join
//! parallelism with `std::thread::scope`: the driving adapters
//! (`for_each`, `try_for_each`, `map` + `collect`) split their items
//! into per-thread chunks, run them on scoped threads, and reassemble
//! results in order. There is no work stealing — items are partitioned
//! statically — which is fine for the regular, even-sized workloads
//! (lines, chunks, batch rows) this workspace parallelizes.

use std::num::NonZeroUsize;

/// Everything the call sites import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item on scoped worker threads, preserving input
/// order in the output.
fn parallel_map<T: Send, U: Send, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    F: Fn(T) -> U + Sync,
{
    let threads = max_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Vec<U>> = Vec::with_capacity(threads);
    // Partition the items up front; each scoped thread owns one part.
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        parts.push(std::mem::replace(&mut items, rest));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| scope.spawn(move || part.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            slots.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    slots.into_iter().flatten().collect()
}

/// A parallel iterator: a source of `Send` items that the driving
/// adapters fan out across threads.
pub trait ParallelIterator: Sized + Send {
    /// Item type.
    type Item: Send;

    /// Materializes the items, applying any pending `map` stages in
    /// parallel.
    fn into_items(self) -> Vec<Self::Item>;

    /// Pairs items positionally with another parallel iterator.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Tags items with their index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Lazily maps items; the map runs in parallel when driven.
    fn map<U: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Runs `f` over every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        parallel_map(self.into_items(), &|item| f(item));
    }

    /// Runs `f` over every item in parallel, returning the first error.
    ///
    /// Unlike rayon there is no early cancellation: remaining items
    /// still run after a failure, and the first error *in input order*
    /// is returned.
    fn try_for_each<E, F>(self, f: F) -> Result<(), E>
    where
        E: Send,
        F: Fn(Self::Item) -> Result<(), E> + Sync + Send,
    {
        parallel_map(self.into_items(), &|item| f(item))
            .into_iter()
            .collect()
    }

    /// Collects the items (driving pending maps in parallel).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_items().into_iter().collect()
    }

    /// Sums the items (driving pending maps in parallel).
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.into_items().into_iter().sum()
    }

    /// Item count.
    fn count(self) -> usize {
        self.into_items().len()
    }
}

/// Parallel iterator over an already-materialized item list.
pub struct VecIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Positional pairing of two parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.a
            .into_items()
            .into_iter()
            .zip(self.b.into_items())
            .collect()
    }
}

/// Index-tagged items.
pub struct Enumerate<A> {
    base: A,
}

impl<A: ParallelIterator> ParallelIterator for Enumerate<A> {
    type Item = (usize, A::Item);

    fn into_items(self) -> Vec<Self::Item> {
        self.base.into_items().into_iter().enumerate().collect()
    }
}

/// Lazy parallel map.
pub struct Map<A, F> {
    base: A,
    f: F,
}

impl<A, U, F> ParallelIterator for Map<A, F>
where
    A: ParallelIterator,
    U: Send,
    F: Fn(A::Item) -> U + Sync + Send,
{
    type Item = U;

    fn into_items(self) -> Vec<U> {
        parallel_map(self.base.into_items(), &self.f)
    }
}

/// Conversion into a parallel iterator (subset of rayon's trait).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = VecIter<$t>;

            fn into_par_iter(self) -> VecIter<$t> {
                VecIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u32, u64, usize, i32, i64);

/// `par_iter` / `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` items.
    fn par_iter(&self) -> VecIter<&T>;
    /// Parallel iterator over non-overlapping `size`-element chunks.
    fn par_chunks(&self, size: usize) -> VecIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> VecIter<&T> {
        VecIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, size: usize) -> VecIter<&[T]> {
        VecIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` over exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T` items.
    fn par_iter_mut(&mut self) -> VecIter<&mut T>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> VecIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> VecIter<&mut T> {
        VecIter {
            items: self.iter_mut().collect(),
        }
    }

    fn par_chunks_mut(&mut self, size: usize) -> VecIter<&mut [T]> {
        VecIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0usize..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == i * i));
    }

    #[test]
    fn chunks_mut_zip_for_each_writes_disjoint() {
        let mut out = vec![0u32; 64];
        let src: Vec<u32> = (0..64).collect();
        out.par_chunks_mut(8)
            .zip(src.par_chunks(8))
            .for_each(|(dst, s)| {
                for (d, v) in dst.iter_mut().zip(s) {
                    *d = v * 2;
                }
            });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }

    #[test]
    fn try_for_each_returns_first_error_in_order() {
        let r: Result<(), usize> =
            (0usize..100)
                .into_par_iter()
                .try_for_each(|i| if i >= 40 { Err(i) } else { Ok(()) });
        assert_eq!(r, Err(40));
        let ok: Result<(), usize> = (0usize..100).into_par_iter().try_for_each(|_| Ok(()));
        assert!(ok.is_ok());
    }

    #[test]
    fn enumerate_tags_in_order() {
        let v = [10, 20, 30];
        let tagged: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &v)| (i, v)).collect();
        assert_eq!(tagged, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        if super::max_threads() < 2 {
            return; // single-core CI: nothing to verify
        }
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        (0usize..256).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::yield_now();
        });
        assert!(ids.lock().unwrap().len() > 1);
    }
}
