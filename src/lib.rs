//! Workspace-level facade for integration tests and examples.
//!
//! All functionality lives in the `sciml-*` crates; this crate only exists
//! so the repository root can host `examples/` and `tests/`.
pub use sciml_core as core;
