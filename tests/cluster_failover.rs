//! Cluster-mode integration test: a 3-node loopback cluster loses one
//! node while a `stage` run is in progress. The replica-failover client
//! must finish the stage with byte-identical output and account for the
//! failovers it performed.

use sciml_obs::MetricsRegistry;
use sciml_pipeline::SampleSource;
use sciml_serve::{ClientConfig, ClusterConfig, ClusterSource, ServeBuilder, ServerHandle};
use sciml_store::{ShardPlan, ShardSource, Stager, StagerConfig};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sciml_it_cluster_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Deterministic, index-tagged samples so corruption or misrouting is
/// caught byte-for-byte.
fn samples(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let mut b = vec![(i % 251) as u8; 96];
            b[..8].copy_from_slice(&(i as u64).to_le_bytes());
            b
        })
        .collect()
}

/// A source with a small per-fetch delay, giving the staging run a
/// guaranteed minimum duration so the node kill lands mid-stage.
#[derive(Debug)]
struct SlowSource {
    blobs: Vec<Vec<u8>>,
    delay: Duration,
}

impl SampleSource for SlowSource {
    fn len(&self) -> usize {
        self.blobs.len()
    }

    fn fetch(&self, idx: usize) -> sciml_pipeline::Result<Vec<u8>> {
        std::thread::sleep(self.delay);
        Ok(self.blobs[idx].clone())
    }

    fn bytes_read(&self) -> u64 {
        0
    }
}

/// Discovers `n` distinct free loopback ports by binding ephemeral
/// listeners, then releases them for the cluster nodes to claim.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// Staging through a 3-node cluster survives losing a node mid-run:
/// the staged store is byte-identical to the backing data and the
/// `serve.client.failover` counter records the reroutes.
#[test]
fn stage_survives_node_death_with_byte_identical_output() {
    let n = 256usize;
    let data = samples(n);
    let addrs = reserve_addrs(3);
    let out = tmp_dir("failover");

    // Every node serves the same dataset (as replicated cluster members
    // would), each fetch taking ~3 ms so the full 256-sample stage runs
    // long enough for the kill to land while shards are still staging.
    let servers: Vec<ServerHandle> = addrs
        .iter()
        .map(|addr| {
            ServeBuilder::new()
                .dataset(
                    "demo",
                    Arc::new(SlowSource {
                        blobs: data.clone(),
                        delay: Duration::from_millis(3),
                    }) as Arc<dyn SampleSource>,
                )
                .cluster(ClusterConfig {
                    nodes: addrs.clone(),
                    replication: 2,
                })
                .bind(addr.clone())
                .expect("bind cluster node")
        })
        .collect();

    // Tight client budget: a dead node should cost one quick failed
    // attempt per routed fetch, not a long retry ladder.
    let registry = MetricsRegistry::new();
    let cfg = ClientConfig {
        max_attempts: 2,
        initial_backoff: Duration::from_millis(10),
        read_timeout: Duration::from_secs(5),
        ..ClientConfig::default()
    };
    let src = Arc::new(
        ClusterSource::connect_with_registry(addrs[0].clone(), "demo", cfg, Arc::clone(&registry))
            .expect("connect cluster"),
    );
    assert_eq!(src.len(), n);
    let plan = src.plan().clone();
    assert!(
        plan.shards.len() >= 3,
        "need several shards for a meaningful placement, got {}",
        plan.shards.len()
    );

    // Kill the primary of the *last* shard shortly after staging
    // starts: with one stager worker the per-fetch delay guarantees
    // that shard is still unstaged when its primary dies, so finishing
    // it must fail over to the surviving replica.
    let victim = plan.shards.last().expect("shards").replicas[0] as usize;
    let mut victim_handle = None;
    let mut survivors = Vec::new();
    for (i, s) in servers.into_iter().enumerate() {
        if i == victim {
            victim_handle = Some(s);
        } else {
            survivors.push(s);
        }
    }
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        if let Some(s) = victim_handle {
            s.shutdown();
        }
    });

    let plans: Vec<ShardPlan> = plan.shards.iter().map(|a| a.plan).collect();
    let stager = Stager::new(
        Arc::clone(&src) as Arc<dyn SampleSource>,
        plans,
        &out,
        StagerConfig {
            workers: 1,
            ..StagerConfig::default()
        },
    )
    .expect("stager");
    stager.spawn_workers();
    let progress = stager.join().expect("stage through node death");
    killer.join().expect("killer thread");

    assert_eq!(progress.failed_shards, 0, "no shard may fail permanently");
    assert_eq!(progress.staged_shards, progress.total_shards);
    assert!(
        src.failovers() > 0,
        "killing the last shard's primary must force at least one failover"
    );
    assert_eq!(
        registry.snapshot().counter("serve.client.failover"),
        src.failovers(),
        "failovers must be visible in the shared registry"
    );

    // The staged store is byte-identical to the backing data.
    let staged = ShardSource::open(&out).expect("open staged store");
    assert_eq!(staged.len(), n);
    for (i, expected) in data.iter().enumerate() {
        assert_eq!(
            &staged.fetch(i).expect("staged fetch"),
            expected,
            "staged sample {i} diverged"
        );
    }
    staged.verify().expect("staged store CRC check");

    for s in survivors {
        s.shutdown();
    }
    std::fs::remove_dir_all(&out).ok();
}
