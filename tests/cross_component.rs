//! Cross-crate consistency tests: the invariants that tie the
//! subsystems together.

use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_data::serialize;
use sciml_data::tfrecord::{Compression, TfRecordReader, TfRecordWriter};
use sciml_gpusim::{decode_cosmo, decode_deepcam, Gpu, GpuSpec};

/// The central functional invariant of the GPU offload: simulated-device
/// decode output is bit-identical to the CPU decoder for both codecs and
/// both device generations.
#[test]
fn gpu_sim_matches_cpu_decoders_on_both_codecs() {
    let cs = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0);
    let cenc = cf::encode(&cs);
    let ds = ClimateGenerator::new(DeepCamConfig::test_small()).generate(0);
    let (denc, _) = dc::encode(&ds, &dc::EncoderConfig::default());

    for spec in [GpuSpec::V100, GpuSpec::A100] {
        let gpu = Gpu::new(spec);
        let (cosmo_dev, _, _) = decode_cosmo(&gpu, &cenc, Op::Log1p).unwrap();
        assert_eq!(
            cosmo_dev,
            cf::decode(&cenc, Op::Log1p).unwrap(),
            "{}",
            spec.name
        );
        let (cam_dev, _, _) = decode_deepcam(&gpu, &denc, Op::Identity).unwrap();
        assert_eq!(
            cam_dev,
            dc::decode(&denc, Op::Identity).unwrap(),
            "{}",
            spec.name
        );
    }
}

/// TFRecord + gzip + codec round-trip: samples written as gzip-compressed
/// TFRecords (the paper's baseline storage) reconstruct exactly.
#[test]
fn gzip_tfrecord_storage_roundtrip() {
    let g = UniverseGenerator::new(CosmoFlowConfig::test_small());
    let samples: Vec<_> = (0..3).map(|i| g.generate(i)).collect();

    let mut w = TfRecordWriter::new();
    for s in &samples {
        w.write_record(&serialize::cosmo_to_payload(s));
    }
    let file = w.finish(Compression::Gzip);

    let mut r = TfRecordReader::new(&file, Compression::Gzip).unwrap();
    let records = r.read_all().unwrap();
    assert_eq!(records.len(), 3);
    for (rec, orig) in records.iter().zip(&samples) {
        assert_eq!(&serialize::cosmo_from_payload(rec).unwrap(), orig);
    }
}

/// The encoded wire formats survive TFRecord framing too (staged
/// encoded datasets in the optimized path).
#[test]
fn encoded_samples_survive_tfrecord_framing() {
    let g = UniverseGenerator::new(CosmoFlowConfig::test_small());
    let s = g.generate(5);
    let enc = cf::encode(&s);

    let mut w = TfRecordWriter::new();
    w.write_record(&enc.to_bytes());
    let file = w.finish(Compression::None);
    let mut r = TfRecordReader::new(&file, Compression::None).unwrap();
    let rec = r.next_record().unwrap().unwrap();
    let enc2 = cf::EncodedCosmo::from_bytes(&rec).unwrap();
    assert_eq!(enc, enc2);
    assert_eq!(cf::decode_counts(&enc2).unwrap(), s.counts);
}

/// Compression-ratio ordering on the synthetic data: the custom encoding
/// must beat raw decisively; gzip compresses harder but decodes on the
/// CPU only (the paper's trade-off).
#[test]
fn compression_ratio_ordering() {
    let g = UniverseGenerator::new(CosmoFlowConfig::test_small());
    let s = g.generate(1);
    let raw = serialize::cosmo_to_payload(&s);
    let gz = sciml_compress::gzip_compress(&raw, sciml_compress::Level::Default);
    let enc = cf::encode(&s).to_bytes();
    assert!(
        enc.len() * 3 < raw.len(),
        "custom must be >3x smaller than raw"
    );
    assert!(gz.len() < raw.len(), "gzip must compress");
}

/// DeepCAM end-to-end through h5lite storage: serialize, encode from the
/// parsed sample, decode, bounded error.
#[test]
fn deepcam_h5_to_codec_chain() {
    let s = ClimateGenerator::new(DeepCamConfig::test_small()).generate(2);
    let h5 = serialize::deepcam_to_h5(&s).unwrap();
    let parsed = serialize::deepcam_from_h5(&h5).unwrap();
    assert_eq!(parsed, s);
    let cfg = dc::EncoderConfig::default();
    let (enc, _) = dc::encode(&parsed, &cfg);
    let out = dc::decode(&enc, Op::Identity).unwrap();
    for (h, &x) in out.iter().zip(&s.data) {
        let denom = x.abs().max(cfg.abs_floor);
        assert!(((h.to_f32() - x) / denom).abs() <= cfg.escape_rel_tol + 2e-3);
    }
}

/// The platform model's workload sizes stay consistent with the real
/// full-scale shapes used by the paper.
#[test]
fn platform_profile_sizes_match_real_sample_shapes() {
    use sciml_platform::WorkloadProfile;
    let cosmo = WorkloadProfile::cosmoflow();
    assert_eq!(cosmo.raw_bytes as usize, 128 * 128 * 128 * 4 * 4);
    let cam = WorkloadProfile::deepcam();
    assert_eq!(cam.raw_bytes as usize, 1152 * 768 * 16 * 4);
    let full = DeepCamConfig::default();
    assert_eq!(cam.raw_bytes as usize, full.values() * 4);
}
