//! End-to-end integration tests spanning the whole stack:
//! generate → serialize → store → load → decode → train.

use sciml_codec::Op;
use sciml_core::api::{build_pipeline, DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::CosmoFlowConfig;
use sciml_data::deepcam::DeepCamConfig;
use sciml_gpusim::GpuSpec;
use sciml_pipeline::batch::Label;
use sciml_pipeline::source::{DirSource, StagedSource, VecSource};
use sciml_pipeline::{Pipeline, PipelineConfig};
use std::sync::Arc;

fn cosmo_builder() -> DatasetBuilder {
    let mut cfg = CosmoFlowConfig::test_small();
    cfg.grid = 16;
    cfg.halos = 8;
    DatasetBuilder::cosmoflow(cfg)
}

#[test]
fn all_cosmo_variants_deliver_identical_tensors() {
    let b = cosmo_builder();
    let n = 6;
    let mut per_variant: Vec<Vec<(usize, Vec<sciml_half::F16>)>> = Vec::new();
    for (format, gpu) in [
        (EncodedFormat::Base, None),
        (EncodedFormat::Gzip, None),
        (EncodedFormat::Custom, None),
        (EncodedFormat::Custom, Some(GpuSpec::V100)),
    ] {
        let blobs = b.build(n, format);
        let plugin = b.plugin(format, gpu, Op::Log1p);
        let p = build_pipeline(
            blobs,
            plugin,
            PipelineConfig {
                batch_size: 2,
                epochs: 1,
                seed: 9,
                ..Default::default()
            },
        )
        .unwrap();
        let (batches, _) = p.collect_all().unwrap();
        let mut samples: Vec<(usize, Vec<sciml_half::F16>)> = batches
            .iter()
            .flat_map(|batch| {
                batch
                    .indices
                    .iter()
                    .enumerate()
                    .map(|(i, &idx)| (idx, batch.sample(i).to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect();
        samples.sort_by_key(|(idx, _)| *idx);
        per_variant.push(samples);
    }
    // Every variant must produce bit-identical FP16 tensors per sample.
    for v in &per_variant[1..] {
        assert_eq!(v, &per_variant[0]);
    }
}

#[test]
fn deepcam_masks_survive_the_full_path() {
    let cfg = DeepCamConfig::test_small();
    let gen = sciml_data::deepcam::ClimateGenerator::new(cfg.clone());
    let expected: Vec<Vec<u8>> = (0..4).map(|i| gen.generate(i).mask).collect();

    let b = DatasetBuilder::deepcam(cfg);
    let blobs = b.build(4, EncodedFormat::Custom);
    let plugin = b.plugin(EncodedFormat::Custom, None, Op::Identity);
    let p = build_pipeline(
        blobs,
        plugin,
        PipelineConfig {
            batch_size: 2,
            epochs: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let (batches, _) = p.collect_all().unwrap();
    for batch in batches {
        for (i, &idx) in batch.indices.iter().enumerate() {
            match &batch.labels[i] {
                Label::Mask(m) => assert_eq!(m, &expected[idx], "sample {idx}"),
                other => panic!("expected mask label, got {other:?}"),
            }
        }
    }
}

#[test]
fn pipeline_reads_from_disk_directory_source() {
    let b = cosmo_builder();
    let blobs = b.build(5, EncodedFormat::Custom);
    let dir = std::env::temp_dir().join(format!("sciml_e2e_{}", std::process::id()));
    let src = DirSource::write_all(&dir, &blobs).unwrap();
    let p = Pipeline::launch(
        Arc::new(src),
        b.plugin(EncodedFormat::Custom, None, Op::Log1p),
        PipelineConfig {
            batch_size: 2,
            epochs: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let (batches, stats) = p.collect_all().unwrap();
    assert_eq!(batches.iter().map(|x| x.len()).sum::<usize>(), 10);
    assert!(stats.byte_count() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn staged_source_serves_second_epoch_from_cache() {
    let b = cosmo_builder();
    let blobs = b.build(4, EncodedFormat::Custom);
    let staged = Arc::new(StagedSource::new(VecSource::new(blobs), u64::MAX));
    let staged_ref = Arc::clone(&staged);
    let p = Pipeline::launch(
        staged,
        b.plugin(EncodedFormat::Custom, None, Op::Log1p),
        PipelineConfig {
            batch_size: 2,
            epochs: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let (batches, _) = p.collect_all().unwrap();
    assert_eq!(batches.iter().map(|x| x.len()).sum::<usize>(), 12);
    assert_eq!(staged_ref.misses(), 4, "first epoch stages");
    assert_eq!(staged_ref.hits(), 8, "later epochs hit the stage cache");
}

#[test]
fn train_on_pipeline_output_end_to_end() {
    // Decode through the pipeline, then train the miniature regressor on
    // the delivered FP16 batches: the full consumer path.
    use sciml_minidnn::loss::mse;
    use sciml_minidnn::models::cosmoflow_mini;
    use sciml_minidnn::optim::{Optimizer, Sgd};
    use sciml_minidnn::Tensor;

    let b = cosmo_builder();
    let blobs = b.build(8, EncodedFormat::Custom);
    let plugin = b.plugin(EncodedFormat::Custom, None, Op::Log1p);
    let mut net = cosmoflow_mini(16, 0);
    let mut opt = Sgd::new(1e-3, 0.9);
    let mut losses = Vec::new();
    for _epoch in 0..3 {
        let p = build_pipeline(
            blobs.clone(),
            Arc::clone(&plugin),
            PipelineConfig {
                batch_size: 2,
                epochs: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let (batches, _) = p.collect_all().unwrap();
        let mut sum = 0.0f32;
        for batch in &batches {
            let data: Vec<f32> = batch.data.iter().map(|h| h.to_f32()).collect();
            let x = Tensor::from_vec(&[batch.len(), 4, 16, 16, 16], data);
            let y = Tensor::from_vec(
                &[batch.len(), 4],
                batch
                    .labels
                    .iter()
                    .flat_map(|l| match l {
                        Label::Cosmo(v) => v.to_vec(),
                        _ => panic!("wrong label type"),
                    })
                    .collect(),
            );
            let pred = net.forward(&x);
            let (l, g) = mse(&pred, &y);
            net.backward(&g);
            opt.step(&mut net);
            sum += l;
        }
        losses.push(sum / batches.len() as f32);
    }
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "{losses:?}"
    );
}
