//! Failure injection across every wire format: systematic corruption
//! must surface as errors (or, for the payload regions of the lossy
//! codec, at worst as decoded garbage) — never as panics, hangs, or
//! out-of-bounds access.

use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_core::api::{build_pipeline, DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_data::serialize;
use sciml_pipeline::PipelineConfig;

fn cosmo_bytes() -> Vec<u8> {
    let mut cfg = CosmoFlowConfig::test_small();
    cfg.grid = 12;
    cf::encode(&UniverseGenerator::new(cfg).generate(0)).to_bytes()
}

fn deepcam_bytes() -> Vec<u8> {
    dc::encode(
        &ClimateGenerator::new(DeepCamConfig::test_small()).generate(0),
        &dc::EncoderConfig::default(),
    )
    .0
    .to_bytes()
}

/// Flip one bit at every sampled position; parsing and decoding must not
/// panic, and any successfully parsed container must decode or error
/// cleanly.
#[test]
fn cosmo_codec_survives_bit_flips() {
    let bytes = cosmo_bytes();
    for pos in (0..bytes.len()).step_by(13) {
        for bit in [0u8, 4, 7] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 1 << bit;
            if let Ok(enc) = cf::EncodedCosmo::from_bytes(&corrupted) {
                let _ = cf::decode(&enc, Op::Log1p);
                let _ = cf::decode_counts(&enc);
            }
        }
    }
}

#[test]
fn deepcam_codec_survives_bit_flips() {
    let bytes = deepcam_bytes();
    for pos in (0..bytes.len()).step_by(29) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x81;
        if let Ok(enc) = dc::EncodedDeepCam::from_bytes(&corrupted) {
            let _ = dc::decode(&enc, Op::Identity);
        }
    }
}

/// Every truncation point of every format errors cleanly.
#[test]
fn all_formats_reject_every_truncation() {
    let cosmo = cosmo_bytes();
    for cut in (0..cosmo.len()).step_by(7) {
        assert!(cf::EncodedCosmo::from_bytes(&cosmo[..cut]).is_err(), "cosmo cut {cut}");
    }
    let cam = deepcam_bytes();
    for cut in (0..cam.len()).step_by(37) {
        assert!(dc::EncodedDeepCam::from_bytes(&cam[..cut]).is_err(), "deepcam cut {cut}");
    }
    let s = ClimateGenerator::new(DeepCamConfig::test_small()).generate(1);
    let h5 = serialize::deepcam_to_h5(&s).unwrap();
    for cut in (0..h5.len()).step_by(101) {
        assert!(serialize::deepcam_from_h5(&h5[..cut]).is_err(), "h5 cut {cut}");
    }
}

/// A pipeline fed one corrupt sample among good ones reports the error
/// instead of hanging or delivering bad data silently.
#[test]
fn pipeline_surfaces_midstream_corruption() {
    let mut cfg = CosmoFlowConfig::test_small();
    cfg.grid = 12;
    let b = DatasetBuilder::cosmoflow(cfg);
    let mut blobs = b.build(6, EncodedFormat::Custom);
    // Corrupt the grid field of sample 3 so decode sees an inconsistent
    // container.
    blobs[3][9] ^= 0xFF;
    let plugin = b.plugin(EncodedFormat::Custom, None, Op::Log1p);
    let mut p = build_pipeline(
        blobs,
        plugin,
        PipelineConfig {
            batch_size: 2,
            epochs: 1,
            reader_threads: 2,
            decode_threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    // Some batches may arrive before the corrupt sample is hit, but the
    // run must terminate with an error, not deliver all 6 samples.
    let mut delivered = 0;
    let mut saw_error = false;
    loop {
        match p.next_batch() {
            Ok(Some(batch)) => delivered += batch.len(),
            Ok(None) => break,
            Err(_) => {
                saw_error = true;
                break;
            }
        }
    }
    assert!(saw_error, "corruption was swallowed; delivered {delivered}");
    assert!(delivered < 6);
}

/// Zeroing whole regions (directory, payload, table) of the containers
/// must never panic.
#[test]
fn zeroed_regions_never_panic() {
    for bytes in [cosmo_bytes(), deepcam_bytes()] {
        let n = bytes.len();
        for (start, end) in [(0, n / 4), (n / 4, n / 2), (n / 2, n)] {
            let mut z = bytes.clone();
            z[start..end].fill(0);
            if let Ok(enc) = cf::EncodedCosmo::from_bytes(&z) {
                let _ = cf::decode(&enc, Op::Identity);
            }
            if let Ok(enc) = dc::EncodedDeepCam::from_bytes(&z) {
                let _ = dc::decode(&enc, Op::Identity);
            }
        }
    }
}
