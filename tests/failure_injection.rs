//! Failure injection across every wire format: systematic corruption
//! must surface as errors (or, for the payload regions of the lossy
//! codec, at worst as decoded garbage) — never as panics, hangs, or
//! out-of-bounds access.

use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_core::api::{build_pipeline, DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_data::serialize;
use sciml_pipeline::PipelineConfig;

fn cosmo_bytes() -> Vec<u8> {
    let mut cfg = CosmoFlowConfig::test_small();
    cfg.grid = 12;
    cf::encode(&UniverseGenerator::new(cfg).generate(0)).to_bytes()
}

fn deepcam_bytes() -> Vec<u8> {
    dc::encode(
        &ClimateGenerator::new(DeepCamConfig::test_small()).generate(0),
        &dc::EncoderConfig::default(),
    )
    .0
    .to_bytes()
}

/// Flip one bit at every sampled position; parsing and decoding must not
/// panic, and any successfully parsed container must decode or error
/// cleanly.
#[test]
fn cosmo_codec_survives_bit_flips() {
    let bytes = cosmo_bytes();
    for pos in (0..bytes.len()).step_by(13) {
        for bit in [0u8, 4, 7] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 1 << bit;
            if let Ok(enc) = cf::EncodedCosmo::from_bytes(&corrupted) {
                let _ = cf::decode(&enc, Op::Log1p);
                let _ = cf::decode_counts(&enc);
            }
        }
    }
}

#[test]
fn deepcam_codec_survives_bit_flips() {
    let bytes = deepcam_bytes();
    for pos in (0..bytes.len()).step_by(29) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x81;
        if let Ok(enc) = dc::EncodedDeepCam::from_bytes(&corrupted) {
            let _ = dc::decode(&enc, Op::Identity);
        }
    }
}

/// Every truncation point of every format errors cleanly.
#[test]
fn all_formats_reject_every_truncation() {
    let cosmo = cosmo_bytes();
    for cut in (0..cosmo.len()).step_by(7) {
        assert!(
            cf::EncodedCosmo::from_bytes(&cosmo[..cut]).is_err(),
            "cosmo cut {cut}"
        );
    }
    let cam = deepcam_bytes();
    for cut in (0..cam.len()).step_by(37) {
        assert!(
            dc::EncodedDeepCam::from_bytes(&cam[..cut]).is_err(),
            "deepcam cut {cut}"
        );
    }
    let s = ClimateGenerator::new(DeepCamConfig::test_small()).generate(1);
    let h5 = serialize::deepcam_to_h5(&s).unwrap();
    for cut in (0..h5.len()).step_by(101) {
        assert!(
            serialize::deepcam_from_h5(&h5[..cut]).is_err(),
            "h5 cut {cut}"
        );
    }
}

/// A pipeline fed one corrupt sample among good ones reports the error
/// instead of hanging or delivering bad data silently.
#[test]
fn pipeline_surfaces_midstream_corruption() {
    let mut cfg = CosmoFlowConfig::test_small();
    cfg.grid = 12;
    let b = DatasetBuilder::cosmoflow(cfg);
    let mut blobs = b.build(6, EncodedFormat::Custom);
    // Corrupt the grid field of sample 3 so decode sees an inconsistent
    // container.
    blobs[3][9] ^= 0xFF;
    let plugin = b.plugin(EncodedFormat::Custom, None, Op::Log1p);
    let mut p = build_pipeline(
        blobs,
        plugin,
        PipelineConfig {
            batch_size: 2,
            epochs: 1,
            reader_threads: 2,
            decode_threads: 2,
            ..Default::default()
        },
    )
    .unwrap();
    // Some batches may arrive before the corrupt sample is hit, but the
    // run must terminate with an error, not deliver all 6 samples.
    let mut delivered = 0;
    let mut saw_error = false;
    loop {
        match p.next_batch() {
            Ok(Some(batch)) => delivered += batch.len(),
            Ok(None) => break,
            Err(_) => {
                saw_error = true;
                break;
            }
        }
    }
    assert!(saw_error, "corruption was swallowed; delivered {delivered}");
    assert!(delivered < 6);
}

/// Zeroing whole regions (directory, payload, table) of the containers
/// must never panic.
#[test]
fn zeroed_regions_never_panic() {
    for bytes in [cosmo_bytes(), deepcam_bytes()] {
        let n = bytes.len();
        for (start, end) in [(0, n / 4), (n / 4, n / 2), (n / 2, n)] {
            let mut z = bytes.clone();
            z[start..end].fill(0);
            if let Ok(enc) = cf::EncodedCosmo::from_bytes(&z) {
                let _ = cf::decode(&enc, Op::Identity);
            }
            if let Ok(enc) = dc::EncodedDeepCam::from_bytes(&z) {
                let _ = dc::decode(&enc, Op::Identity);
            }
        }
    }
}

// ------------------------------------------------------------------
// Wire protocol (serving layer): every corruption class must surface
// as a typed `ProtocolError` — never a panic, hang, or allocation
// proportional to an attacker-controlled length.

mod wire {
    use sciml_compress::crc32::crc32;
    use sciml_serve::protocol::{
        decode_frame, encode_frame, read_message, Message, ProtocolError, MAX_FRAME_BYTES,
    };
    use sciml_serve::PROTOCOL_VERSION;

    fn sample_frame() -> Vec<u8> {
        encode_frame(&Message::FetchSamples {
            name: "cosmo".into(),
            indices: vec![0, 7, 3, 7],
        })
    }

    /// Every strict prefix of a valid frame is `Truncated` (or an Io
    /// error on the streaming path) — never a partial decode.
    #[test]
    fn truncated_frames_rejected() {
        let frame = sample_frame();
        for cut in 0..frame.len() {
            assert!(
                matches!(decode_frame(&frame[..cut]), Err(ProtocolError::Truncated)),
                "prefix of {cut} bytes must be Truncated"
            );
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(
                read_message(&mut cursor).is_err(),
                "streaming prefix of {cut} bytes must error"
            );
        }
    }

    /// Corrupting any payload byte flips the CRC check.
    #[test]
    fn bad_crc_detected_for_every_payload_byte() {
        let frame = sample_frame();
        let payload_len = frame.len() - 8;
        for i in 0..payload_len {
            let mut corrupt = frame.clone();
            corrupt[4 + i] ^= 0xA5;
            match decode_frame(&corrupt) {
                Err(ProtocolError::BadCrc { computed, stored }) => {
                    assert_ne!(computed, stored)
                }
                other => panic!("payload byte {i}: expected BadCrc, got {other:?}"),
            }
        }
    }

    /// A frame whose payload carries an unknown tag (with a valid CRC,
    /// so it reaches the parser) is `UnknownTag`.
    #[test]
    fn unknown_tags_rejected() {
        // 0x15 is the first tag past the protocol-v6 range (0x13/0x14
        // became the ClusterManifest request/reply pair).
        for tag in [0x00u8, 0x15, 0x42, 0xEE, 0xFF] {
            let payload = vec![tag];
            let mut frame = Vec::new();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            frame.extend_from_slice(&crc32(&payload).to_le_bytes());
            assert!(
                matches!(decode_frame(&frame), Err(ProtocolError::UnknownTag(t)) if t == tag),
                "tag {tag:#04x} must be rejected"
            );
        }
    }

    /// Oversized length prefixes are rejected before any allocation,
    /// on both the slice and streaming paths.
    #[test]
    fn oversized_length_prefix_rejected() {
        for len in [MAX_FRAME_BYTES + 1, u32::MAX / 2, u32::MAX] {
            let mut frame = vec![0u8; 64];
            frame[..4].copy_from_slice(&len.to_le_bytes());
            assert!(matches!(
                decode_frame(&frame),
                Err(ProtocolError::Oversized(l)) if l == len
            ));
            let mut cursor = std::io::Cursor::new(frame);
            assert!(matches!(
                read_message(&mut cursor),
                Err(ProtocolError::Oversized(l)) if l == len
            ));
        }
    }

    /// A live server answers a corrupt frame with a typed error frame
    /// (when framing allows) and never crashes; the next, clean
    /// connection must work.
    #[test]
    fn server_survives_corrupt_frames() {
        use sciml_pipeline::source::VecSource;
        use sciml_pipeline::SampleSource;
        use sciml_serve::protocol::write_message;
        use sciml_serve::ServeBuilder;
        use std::io::Write as _;
        use std::sync::Arc;

        let server = ServeBuilder::new()
            .dataset(
                "ds",
                Arc::new(VecSource::new(vec![vec![1u8; 8]; 4])) as Arc<dyn SampleSource>,
            )
            .bind("127.0.0.1:0")
            .expect("bind");

        // Connection 1: greet, then send garbage with a bad CRC.
        let mut c = std::net::TcpStream::connect(server.local_addr()).unwrap();
        c.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        write_message(
            &mut c,
            &Message::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        let _ = read_message(&mut c).unwrap();
        let payload = Message::Stats.to_payload();
        c.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
        c.write_all(&payload).unwrap();
        c.write_all(&0xDEADBEEFu32.to_le_bytes()).unwrap(); // wrong CRC
        c.flush().unwrap();
        // The server answers with a typed error frame, then closes.
        match read_message(&mut c) {
            Ok(Message::Error { .. }) => {}
            other => panic!("expected error frame, got {other:?}"),
        }

        // Connection 2 (clean) must be unaffected.
        let mut c2 = std::net::TcpStream::connect(server.local_addr()).unwrap();
        c2.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        write_message(
            &mut c2,
            &Message::Hello {
                version: PROTOCOL_VERSION,
            },
        )
        .unwrap();
        assert!(matches!(
            read_message(&mut c2).unwrap(),
            Message::HelloAck { .. }
        ));
        write_message(&mut c2, &Message::Stats).unwrap();
        // v5 was negotiated, so the per-encoding reply comes back.
        assert!(matches!(
            read_message(&mut c2).unwrap(),
            Message::StatsReplyV3(_)
        ));
        server.shutdown();
    }
}
