//! Smoke tests for the figure-regeneration paths: every series the
//! `figures` binary prints must be producible and carry the paper's
//! headline shapes.

use sciml_platform::figures as pfig;
use sciml_platform::Format;

#[test]
fn every_throughput_figure_is_complete_and_positive() {
    for rows in [pfig::fig8(), pfig::fig10(), pfig::fig11()] {
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.node_throughput.is_finite() && r.node_throughput > 0.0);
        }
    }
}

#[test]
fn breakdown_figures_are_complete() {
    for rows in [pfig::fig9(), pfig::fig12()] {
        assert!(!rows.is_empty());
        for r in &rows {
            let b = &r.breakdown;
            for v in [
                b.read_s,
                b.host_s,
                b.h2d_s,
                b.gpu_decode_s,
                b.step_s,
                b.allreduce_s,
            ] {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }
}

#[test]
fn headline_speedups_hold() {
    // "speedups of up to 3× and 10× for DeepCAM and CosmoFlow" (§I).
    let best = |rows: &[pfig::ThroughputRow], plugin: Format| -> f64 {
        let mut best = 0.0f64;
        for r in rows.iter().filter(|r| r.format == plugin) {
            if let Some(b) = rows.iter().find(|b| {
                b.platform == r.platform
                    && b.dataset == r.dataset
                    && b.staged == r.staged
                    && b.batch == r.batch
                    && b.format == Format::Base
            }) {
                best = best.max(r.node_throughput / b.node_throughput);
            }
        }
        best
    };
    let deepcam = best(&pfig::fig8(), Format::PluginGpu);
    assert!(
        (2.0..5.0).contains(&deepcam),
        "DeepCAM best speedup {deepcam}"
    );
    let mut cosmo_rows = pfig::fig10();
    cosmo_rows.extend(pfig::fig11());
    let cosmo = best(&cosmo_rows, Format::PluginGpu);
    assert!(cosmo >= 8.0, "CosmoFlow best speedup {cosmo}");
}

#[test]
fn convergence_smoke() {
    use sciml_core::convergence::{cosmoflow_convergence, ConvergenceConfig};
    let cfg = ConvergenceConfig::test_small();
    let run = cosmoflow_convergence(&cfg, 0);
    assert_eq!(run.base.epoch_losses.len(), cfg.epochs);
    assert!(run.base.final_loss().is_finite());
    assert!(run.decoded.final_loss().is_finite());
}

#[test]
fn table1_renders() {
    let t = pfig::table1();
    assert!(t.lines().count() >= 10);
}
