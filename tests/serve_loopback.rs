//! Loopback integration tests for the disaggregated serving tier: a
//! real TCP server on 127.0.0.1 behind a real multi-threaded pipeline.

use sciml_codec::Op;
use sciml_core::api::{DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::CosmoFlowConfig;
use sciml_pipeline::source::VecSource;
use sciml_pipeline::{Pipeline, PipelineConfig, SampleSource};
use sciml_serve::{ClientConfig, RemoteSource, ServeBuilder, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn dataset(n: usize) -> (DatasetBuilder, Vec<Vec<u8>>) {
    let mut cfg = CosmoFlowConfig::test_small();
    cfg.grid = 12;
    let builder = DatasetBuilder::cosmoflow(cfg);
    let blobs = builder.build(n, EncodedFormat::Custom);
    (builder, blobs)
}

fn serve(blobs: Vec<Vec<u8>>) -> sciml_serve::ServerHandle {
    ServeBuilder::new()
        .config(ServerConfig {
            cache_bytes: 64 << 20,
            ..ServerConfig::default()
        })
        .dataset(
            "cosmo",
            Arc::new(VecSource::new(blobs)) as Arc<dyn SampleSource>,
        )
        .bind("127.0.0.1:0")
        .expect("bind loopback")
}

/// Splits each batch back into `(epoch, index) -> decoded sample
/// bytes` for order-independent comparison (batch composition depends
/// on worker arrival order, which is intentionally concurrent).
fn per_sample(
    batches: &[sciml_pipeline::Batch],
) -> std::collections::BTreeMap<(usize, usize), Vec<sciml_half::F16>> {
    let mut map = std::collections::BTreeMap::new();
    for b in batches {
        for (k, &idx) in b.indices.iter().enumerate() {
            let sample = b.data[k * b.sample_len..(k + 1) * b.sample_len].to_vec();
            let prev = map.insert((b.epoch, idx), sample);
            assert!(
                prev.is_none(),
                "sample {idx} delivered twice in epoch {}",
                b.epoch
            );
        }
    }
    map
}

/// A full pipeline run over a `RemoteSource` must deliver every sample
/// exactly once per epoch, decoded byte-identical to the same pipeline
/// over the local source, and the second epoch must be served from the
/// server's DRAM hot cache.
#[test]
fn remote_epoch_matches_local_and_hits_cache() {
    let n = 12usize;
    let (builder, blobs) = dataset(n);
    let server = serve(blobs.clone());

    let remote =
        Arc::new(RemoteSource::connect(server.local_addr().to_string(), "cosmo").expect("connect"));
    assert_eq!(remote.len(), n);

    let cfg = PipelineConfig {
        batch_size: 4,
        epochs: 2,
        seed: 42,
        ..PipelineConfig::default()
    };
    let plugin = builder.plugin(EncodedFormat::Custom, None, Op::Log1p);

    let local_pipeline =
        Pipeline::launch(Arc::new(VecSource::new(blobs)), plugin.clone(), cfg.clone())
            .expect("local pipeline");
    let (local_batches, _) = local_pipeline.collect_all().expect("local epochs");

    let remote_pipeline = Pipeline::launch(remote.clone() as Arc<dyn SampleSource>, plugin, cfg)
        .expect("remote pipeline");
    let (remote_batches, _) = remote_pipeline.collect_all().expect("remote epochs");

    // Exactly once per epoch: 2 epochs * n samples in total, and
    // per_sample() panics on any duplicate within an epoch.
    let delivered: usize = remote_batches.iter().map(|b| b.len()).sum();
    assert_eq!(delivered, 2 * n);

    let local = per_sample(&local_batches);
    let remote_samples = per_sample(&remote_batches);
    assert_eq!(local.len(), 2 * n);
    assert_eq!(
        local, remote_samples,
        "remote-decoded samples diverged from local"
    );

    // Epoch 1 misses (cold), epoch 2 hits the server-side hot cache.
    let stats = remote.server_stats().expect("stats");
    assert_eq!(stats.cache_misses, n as u64, "first epoch should miss");
    assert!(
        stats.cache_hits >= n as u64,
        "second epoch should be served from the hot cache (hits = {})",
        stats.cache_hits
    );
    assert_eq!(stats.samples_served, 2 * n as u64);
    assert!(stats.bytes_sent > 0);
    assert!(stats.request_ns > 0);

    server.shutdown();
}

/// With one reader and one decoder the pipeline is fully deterministic,
/// so the remote run must be batch-for-batch identical to the local
/// run, labels and all.
#[test]
fn remote_single_threaded_run_is_batch_identical() {
    let n = 8usize;
    let (builder, blobs) = dataset(n);
    let server = serve(blobs.clone());
    let remote =
        Arc::new(RemoteSource::connect(server.local_addr().to_string(), "cosmo").expect("connect"));

    let cfg = PipelineConfig {
        batch_size: 3, // exercises the short tail batch too
        reader_threads: 1,
        decode_threads: 1,
        epochs: 1,
        seed: 7,
        ..PipelineConfig::default()
    };
    let plugin = builder.plugin(EncodedFormat::Custom, None, Op::Log1p);

    let (local_batches, _) =
        Pipeline::launch(Arc::new(VecSource::new(blobs)), plugin.clone(), cfg.clone())
            .expect("local pipeline")
            .collect_all()
            .expect("local epoch");
    let (remote_batches, _) = Pipeline::launch(remote as Arc<dyn SampleSource>, plugin, cfg)
        .expect("remote pipeline")
        .collect_all()
        .expect("remote epoch");

    assert_eq!(local_batches.len(), remote_batches.len());
    for (l, r) in local_batches.iter().zip(&remote_batches) {
        assert_eq!(l.indices, r.indices);
        assert_eq!(l.data, r.data, "remote batch diverged from local");
        assert_eq!(l.labels, r.labels);
        assert_eq!(l.epoch, r.epoch);
    }
    server.shutdown();
}

/// Raw fetches through the trait must be byte-identical to the blobs
/// the server was loaded with.
#[test]
fn remote_fetch_is_byte_identical() {
    let n = 6usize;
    let (_, blobs) = dataset(n);
    let server = serve(blobs.clone());
    let remote = RemoteSource::connect(server.local_addr().to_string(), "cosmo").expect("connect");
    for (i, blob) in blobs.iter().enumerate() {
        assert_eq!(&remote.fetch(i).expect("fetch"), blob, "sample {i}");
    }
    assert_eq!(
        remote.bytes_read(),
        blobs.iter().map(|b| b.len() as u64).sum::<u64>()
    );
    server.shutdown();
}

/// Killing the first server mid-epoch and bringing a new one up on the
/// same address must be absorbed by the client's retry-with-backoff:
/// the reader sees every sample, none duplicated, no error surfaced.
#[test]
fn client_retry_recovers_from_dropped_connection() {
    let n = 8usize;
    let (_, blobs) = dataset(n);

    // First server on an OS-assigned port.
    let server = serve(blobs.clone());
    let addr = server.local_addr();
    let client_cfg = ClientConfig {
        max_attempts: 10,
        initial_backoff: Duration::from_millis(25),
        ..ClientConfig::default()
    };
    let remote =
        RemoteSource::connect_with(addr.to_string(), "cosmo", client_cfg).expect("connect");

    // First half of the epoch against the first server.
    let mut fetched = Vec::new();
    for i in 0..n / 2 {
        fetched.push(remote.fetch(i).expect("fetch pre-drop"));
    }

    // Drop the server: pooled connections die, the port goes dark.
    server.shutdown();

    // Restart on the same port in the background while the client is
    // already retrying. The retry budget (10 attempts, 25 ms backoff
    // doubling) comfortably covers the rebind window.
    let blobs_for_restart = blobs.clone();
    let restarter = std::thread::spawn(move || {
        // Small delay so the client provably observes the outage first.
        std::thread::sleep(Duration::from_millis(60));
        ServeBuilder::new()
            .dataset(
                "cosmo",
                Arc::new(VecSource::new(blobs_for_restart)) as Arc<dyn SampleSource>,
            )
            .bind(addr.to_string())
            .expect("rebind same port")
    });

    for i in n / 2..n {
        fetched.push(remote.fetch(i).expect("fetch post-drop (should retry)"));
    }
    assert!(
        remote.retries() > 0,
        "the outage must have been bridged by retries"
    );
    assert_eq!(fetched.len(), n);
    for (i, blob) in blobs.iter().enumerate() {
        assert_eq!(&fetched[i], blob, "sample {i} corrupted across the outage");
    }

    restarter.join().expect("restarter").shutdown();
}

/// Admission control: with a 1-worker, 1-slot server, a wave of extra
/// connections is rejected with a typed `Busy` error, not a hang.
#[test]
fn admission_limit_rejects_excess_connections() {
    let n = 4usize;
    let (_, blobs) = dataset(n);
    let server = ServeBuilder::new()
        .config(ServerConfig {
            workers: 1,
            accept_backlog: 1,
            max_connections: 1,
            read_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        })
        .dataset(
            "cosmo",
            Arc::new(VecSource::new(blobs)) as Arc<dyn SampleSource>,
        )
        .bind("127.0.0.1:0")
        .expect("bind");
    let addr = server.local_addr();

    // Occupy the single admission slot with a live connection.
    let holder = RemoteSource::connect(addr.to_string(), "cosmo").expect("first connect");
    let _ = holder.fetch(0).expect("holder works");

    // The holder's pooled connection keeps the slot; new connections
    // beyond the limit must be turned away quickly with Busy. Retries
    // are capped so the test finishes fast either way.
    let cfg = ClientConfig {
        max_attempts: 2,
        initial_backoff: Duration::from_millis(5),
        ..ClientConfig::default()
    };
    let mut rejected = 0;
    for _ in 0..4 {
        if RemoteSource::connect_with(addr.to_string(), "cosmo", cfg.clone()).is_err() {
            rejected += 1;
        }
    }
    assert!(
        server.rejected_connections() > 0 || rejected > 0,
        "admission limit never engaged"
    );
    server.shutdown();
}
