//! Reactor-engine integration tests: graceful drain with requests in
//! flight on a real loopback TCP server.

use sciml_pipeline::SampleSource;
use sciml_serve::protocol::{self, ErrorCode, Message};
use sciml_serve::{ServeBuilder, ServerConfig};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A source whose fetches take a fixed wall-clock time, so requests are
/// reliably still in flight when the test starts draining the server.
#[derive(Debug)]
struct SlowSource {
    blobs: Vec<Vec<u8>>,
    delay: Duration,
}

impl SampleSource for SlowSource {
    fn len(&self) -> usize {
        self.blobs.len()
    }

    fn fetch(&self, idx: usize) -> sciml_pipeline::Result<Vec<u8>> {
        std::thread::sleep(self.delay);
        Ok(self.blobs[idx].clone())
    }

    fn bytes_read(&self) -> u64 {
        0
    }
}

fn blobs(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let mut b = vec![i as u8; 4096];
            b[..8].copy_from_slice(&(i as u64).to_le_bytes());
            b
        })
        .collect()
}

/// Graceful drain under load: with several fetches in flight, a
/// `begin_drain` must let every in-flight reply complete byte-identical
/// to the backing data, refuse new connections with the typed draining
/// error, and count the drained connections.
#[test]
fn drain_completes_inflight_replies_and_refuses_new_connections() {
    let n = 8usize;
    let data = blobs(n);
    let inflight = 4usize;
    let server = ServeBuilder::new()
        .config(ServerConfig {
            workers: inflight,
            max_connections: 32,
            drain_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        })
        .dataset(
            "cosmo",
            Arc::new(SlowSource {
                blobs: data.clone(),
                delay: Duration::from_millis(400),
            }) as Arc<dyn SampleSource>,
        )
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let addr = server.local_addr();
    let registry = server.metrics_registry();

    // Raw-protocol clients: each negotiates, then (after the barrier)
    // puts one slow fetch in flight.
    let barrier = Arc::new(Barrier::new(inflight + 1));
    let clients: Vec<_> = (0..inflight)
        .map(|i| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> Message {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                protocol::write_message(
                    &mut stream,
                    &Message::Hello {
                        version: protocol::PROTOCOL_VERSION,
                    },
                )
                .expect("hello");
                match protocol::read_message(&mut stream).expect("hello ack") {
                    Message::HelloAck { .. } => {}
                    other => panic!("unexpected hello reply: {other:?}"),
                }
                barrier.wait();
                protocol::write_message(
                    &mut stream,
                    &Message::FetchSamples {
                        name: "cosmo".into(),
                        indices: vec![i as u64],
                    },
                )
                .expect("fetch request");
                protocol::read_message(&mut stream).expect("fetch reply during drain")
            })
        })
        .collect();

    // Wait for every request to be on the wire (the fetch itself takes
    // 400 ms server-side), then start draining under them.
    barrier.wait();
    std::thread::sleep(Duration::from_millis(100));
    server.begin_drain();

    // A new connection during drain is turned away with the typed
    // draining error before it sends a single byte. A connect that
    // races the drain flag into the same event-loop batch can be
    // admitted and then immediately closed as idle (EOF) — also a
    // refusal, but retry until the typed frame itself is observed.
    let mut reject = None;
    for _ in 0..10 {
        let mut late = TcpStream::connect(addr).expect("connect during drain");
        late.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        match protocol::read_message(&mut late) {
            Ok(msg) => {
                reject = Some(msg);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    match reject.expect("no draining reject frame within the retry budget") {
        Message::Error { code, detail } => {
            assert_eq!(code, ErrorCode::Busy);
            assert!(
                detail.contains("draining"),
                "reject should name the drain, got: {detail}"
            );
        }
        other => panic!("expected the draining error, got {other:?}"),
    }

    // Every in-flight reply completes, byte-identical to the backing
    // data, despite the drain racing it.
    for (i, client) in clients.into_iter().enumerate() {
        match client.join().expect("client thread") {
            Message::Samples(payloads) => {
                assert_eq!(payloads.len(), 1);
                assert_eq!(payloads[0], data[i], "sample {i} corrupted by drain");
            }
            other => panic!("client {i}: expected samples, got {other:?}"),
        }
    }

    server.shutdown();
    let snap = registry.snapshot();
    assert!(
        snap.counter("serve.conn.drained") >= inflight as u64,
        "in-flight connections should be counted as drained (got {})",
        snap.counter("serve.conn.drained")
    );
    assert!(
        snap.counter("serve.conn.rejected_busy") >= 1,
        "the late connection should be counted as rejected"
    );
    assert_eq!(
        snap.gauge("serve.conn.active"),
        0,
        "no connection may survive shutdown"
    );
}

/// Draining an idle reactor finishes promptly: `begin_drain` followed
/// by `join` returns without waiting out the drain timeout.
#[test]
fn drain_of_idle_server_returns_quickly() {
    let server = ServeBuilder::new()
        .config(ServerConfig {
            drain_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        })
        .dataset(
            "cosmo",
            Arc::new(SlowSource {
                blobs: blobs(2),
                delay: Duration::ZERO,
            }) as Arc<dyn SampleSource>,
        )
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let t0 = std::time::Instant::now();
    server.begin_drain();
    server.join();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "idle drain must not wait out the drain timeout"
    );
}
