//! Integration tests for the packed-store staging tier: resumable
//! staging over a real journal on disk, and whole-shard staging through
//! a real loopback TCP server.

use sciml_pipeline::source::VecSource;
use sciml_pipeline::SampleSource;
use sciml_serve::{RemoteSource, ServeBuilder, ServerConfig};
use sciml_store::manifest::plan_by_count;
use sciml_store::{pack_store, PackConfig, ShardSource, Stager, StagerConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sciml_it_store_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Deterministic samples with distinct sizes, so byte accounting on the
/// backing source is exact.
fn samples(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| vec![i as u8; 50 + i]).collect()
}

/// A stager killed mid-run must resume from its journal: the restarted
/// run re-fetches only the shards that never completed, and the staged
/// result is byte-identical to the backing data.
#[test]
fn staging_resumes_without_refetching_completed_shards() {
    let n = 12usize;
    let blobs = samples(n);
    let dir = tmp_dir("resume");
    let plans = plan_by_count(n as u64, 2); // 6 shards of 2 samples

    // First run: stage exactly three shards, then "die" (drop the
    // stager without finishing). stage_one is synchronous, so the kill
    // point is deterministic.
    {
        let stager = Stager::new(
            Arc::new(VecSource::new(blobs.clone())),
            plans.clone(),
            &dir,
            StagerConfig::default(),
        )
        .unwrap();
        for expected_id in 0..3u32 {
            assert_eq!(stager.stage_one().unwrap(), Some(expected_id));
        }
        assert_eq!(stager.progress().staged_shards, 3);
    }

    // Restart over a FRESH backing source so bytes_read measures only
    // what the resumed run fetches.
    let backing = Arc::new(VecSource::new(blobs.clone()));
    let stager = Stager::new(
        Arc::clone(&backing) as Arc<dyn SampleSource>,
        plans,
        &dir,
        StagerConfig::default(),
    )
    .unwrap();
    let resumed = stager.progress();
    assert_eq!(resumed.staged_shards, 3, "journal replay trusts 3 shards");

    let progress = stager.run().unwrap();
    assert!(progress.complete());

    // Only samples 6..12 (the three unstaged shards) may have been
    // fetched from the backing source — not one byte more.
    let expected: u64 = (6..n).map(|i| 50 + i as u64).sum();
    assert_eq!(
        backing.bytes_read(),
        expected,
        "resumed run must not re-fetch completed shards"
    );

    // The staged copy serves every sample byte-identical to the
    // original, both through the staging view and as a plain store.
    let via_staging = stager.source();
    let via_store = ShardSource::open(&dir).unwrap();
    for (i, blob) in blobs.iter().enumerate() {
        assert_eq!(&via_staging.fetch(i).unwrap(), blob);
        assert_eq!(&via_store.fetch(i).unwrap(), blob);
    }
    assert_eq!(via_store.verify().unwrap(), n as u64);
    std::fs::remove_dir_all(&dir).ok();
}

/// A journal whose staged files were corrupted on disk is not trusted:
/// the damaged shard stages again, the intact ones do not.
#[test]
fn corrupted_staged_shard_is_restaged_on_resume() {
    let n = 6usize;
    let blobs = samples(n);
    let dir = tmp_dir("corrupt_resume");
    let plans = plan_by_count(n as u64, 2);
    {
        let stager = Stager::new(
            Arc::new(VecSource::new(blobs.clone())),
            plans.clone(),
            &dir,
            StagerConfig::default(),
        )
        .unwrap();
        assert!(stager.run().unwrap().complete());
    }
    // Flip a byte in shard 1's file.
    let victim = dir.join("shard_000001.sshard");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();

    let backing = Arc::new(VecSource::new(blobs.clone()));
    let stager = Stager::new(
        Arc::clone(&backing) as Arc<dyn SampleSource>,
        plans,
        &dir,
        StagerConfig::default(),
    )
    .unwrap();
    assert_eq!(stager.progress().staged_shards, 2, "corrupt shard dropped");
    assert!(stager.run().unwrap().complete());
    // Only the corrupted shard's samples (2 and 3) were re-fetched.
    assert_eq!(backing.bytes_read(), (50 + 2) + (50 + 3));
    let store = ShardSource::open(&dir).unwrap();
    for (i, blob) in blobs.iter().enumerate() {
        assert_eq!(&store.fetch(i).unwrap(), blob);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Full disaggregated flow: pack a store, serve it over loopback TCP,
/// stage it on the "client node" using the server's exported shard
/// plan, and verify the staged copy byte-for-byte.
#[test]
fn staging_through_loopback_serve_matches_backing_bytes() {
    let n = 10usize;
    let blobs = samples(n);
    let store_dir = tmp_dir("serve_pack");
    let staged_dir = tmp_dir("serve_staged");

    let manifest = pack_store(
        &VecSource::new(blobs.clone()),
        &store_dir,
        PackConfig {
            target_shard_bytes: 200, // force several shards
            ..PackConfig::default()
        },
    )
    .unwrap();
    assert!(manifest.shards.len() > 1);

    let server = ServeBuilder::new()
        .config(ServerConfig {
            cache_bytes: 16 << 20,
            ..ServerConfig::default()
        })
        .dataset_store("packed", Arc::new(ShardSource::open(&store_dir).unwrap()))
        .bind("127.0.0.1:0")
        .expect("bind loopback");

    let remote = RemoteSource::connect(server.local_addr().to_string(), "packed").expect("connect");
    let plans = remote.shard_manifest(0).expect("shard manifest");
    assert_eq!(
        plans,
        manifest.plans(),
        "server exports the store's real shard boundaries"
    );

    let stager = Stager::new(
        Arc::new(remote),
        plans,
        &staged_dir,
        StagerConfig {
            workers: 3,
            ..StagerConfig::default()
        },
    )
    .unwrap();
    stager.spawn_workers();
    assert!(stager.join().unwrap().complete());
    server.shutdown();

    // The node-local copy is a complete, self-verifying packed store.
    let staged = ShardSource::open(&staged_dir).unwrap();
    assert_eq!(staged.verify().unwrap(), n as u64);
    for (i, blob) in blobs.iter().enumerate() {
        assert_eq!(&staged.fetch(i).unwrap(), blob);
    }
    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(&staged_dir).ok();
}
