//! Integration tests for the live telemetry plane: cross-process trace
//! propagation over the serve wire protocol, the Prometheus scrape
//! endpoint, and pipeline bottleneck attribution — each exercised
//! against real TCP sockets and real worker threads, not mocks.

use sciml_half::F16;
use sciml_obs::{
    json, merge_chrome_traces, parse_prometheus, pipeline_stages, PipelineSampler, SamplerConfig,
    Telemetry,
};
use sciml_pipeline::source::VecSource;
use sciml_pipeline::{DecodedSample, DecoderPlugin, Label, Pipeline, PipelineConfig, SampleSource};
use sciml_serve::{scrape_once, spawn_scrape_listener, ClientConfig, RemoteSource, ServeBuilder};
use std::sync::Arc;
use std::time::Duration;

fn blobs(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| vec![(i % 251) as u8; 64]).collect()
}

/// Pulls the hex-string span ids out of a Chrome-trace event's `args`.
fn ids_of(event: &json::Value) -> Option<(String, String, String)> {
    let args = event.get("args")?;
    Some((
        args.get("trace")?.as_str()?.to_string(),
        args.get("span")?.as_str()?.to_string(),
        args.get("parent")?.as_str()?.to_string(),
    ))
}

/// The acceptance path: a traced client fetch against a loopback server
/// produces two Chrome traces that merge into one timeline where the
/// server's spans are children of the client's request span.
#[test]
fn loopback_fetch_merges_into_one_parented_trace() {
    let server_tel = Telemetry::new();
    let server = ServeBuilder::new()
        .dataset("demo", Arc::new(VecSource::new(blobs(6))))
        .telemetry(&server_tel)
        .bind("127.0.0.1:0")
        .expect("bind");
    let client_tel = Telemetry::new();
    let src = RemoteSource::connect_with_registry(
        server.local_addr().to_string(),
        "demo",
        ClientConfig::default(),
        Arc::clone(&client_tel.registry),
    )
    .expect("connect");
    {
        // What the pipeline reader does per sample: a root span whose
        // context the remote source propagates over the wire.
        let _root = client_tel.tracer.span_root("pipeline", "fetch");
        src.fetch_batch(&[0, 1, 2]).expect("fetch");
    }
    server.shutdown();

    let mut client_trace = Vec::new();
    client_tel
        .tracer
        .write_chrome_trace(&mut client_trace)
        .unwrap();
    let mut server_trace = Vec::new();
    server_tel
        .tracer
        .write_chrome_trace(&mut server_trace)
        .unwrap();
    let merged = merge_chrome_traces(&[
        ("client".into(), String::from_utf8(client_trace).unwrap()),
        ("server".into(), String::from_utf8(server_trace).unwrap()),
    ])
    .expect("merge");

    let doc = json::parse(&merged).expect("merged trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");

    // Client lane is pid 1, server lane pid 2.
    let client_fetch = events
        .iter()
        .find(|e| {
            e.get("name").and_then(|v| v.as_str()) == Some("fetch")
                && e.get("pid").and_then(|v| v.as_f64()) == Some(1.0)
        })
        .expect("client fetch span in merged trace");
    let (trace_id, fetch_span, fetch_parent) = ids_of(client_fetch).expect("client span ids");
    assert_eq!(fetch_parent, format!("{:016x}", 0), "fetch is the root");

    let server_request = events
        .iter()
        .find(|e| {
            e.get("name").and_then(|v| v.as_str()) == Some("request")
                && e.get("pid").and_then(|v| v.as_f64()) == Some(2.0)
        })
        .expect("server request span in merged trace");
    let (req_trace, req_span, req_parent) = ids_of(server_request).expect("server span ids");
    assert_eq!(req_trace, trace_id, "one trace spans both processes");
    assert_eq!(
        req_parent, fetch_span,
        "request is a child of the client fetch"
    );

    // The server's per-sample fetch spans hang off its request span,
    // still in the same trace.
    let server_fetches: Vec<_> = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(|v| v.as_str()) == Some("fetch")
                && e.get("pid").and_then(|v| v.as_f64()) == Some(2.0)
        })
        .collect();
    assert_eq!(server_fetches.len(), 3, "one server span per sample");
    for f in server_fetches {
        let (t, _, p) = ids_of(f).expect("server fetch ids");
        assert_eq!(t, trace_id);
        assert_eq!(p, req_span);
    }
}

/// A live scrape of a serving process returns parseable Prometheus
/// text exposing the serve.* families with real traffic in them.
#[test]
fn scrape_endpoint_reflects_served_traffic() {
    let tel = Telemetry::disabled();
    let server = ServeBuilder::new()
        .dataset("demo", Arc::new(VecSource::new(blobs(4))))
        .telemetry(&tel)
        .bind("127.0.0.1:0")
        .expect("bind");
    let (scrape_addr, scrape) =
        spawn_scrape_listener("127.0.0.1:0", tel.clone()).expect("bind scrape");

    let src = RemoteSource::connect(server.local_addr().to_string(), "demo").expect("connect");
    src.fetch_batch(&[0, 1]).expect("fetch");

    let body = scrape_once(&scrape_addr.to_string()).expect("scrape");
    let parsed = parse_prometheus(&body).expect("valid exposition");
    assert_eq!(parsed.kind("serve_requests"), Some("counter"));
    let served: u64 = parsed.samples_named("serve_requests")[0]
        .value
        .parse()
        .unwrap();
    assert!(served >= 1, "requests counter moved: {served}");
    assert_eq!(parsed.kind("serve_request_ns"), Some("histogram"));
    assert_eq!(parsed.kind("obs_trace_dropped_spans"), Some("gauge"));

    scrape.shutdown();
    server.shutdown();
}

/// Decoder that burns a fixed wall-clock time per sample.
struct SleepyPlugin {
    delay: Duration,
}

impl DecoderPlugin for SleepyPlugin {
    fn name(&self) -> &'static str {
        "sleepy"
    }

    fn decode(&self, _bytes: &[u8]) -> sciml_pipeline::Result<DecodedSample> {
        std::thread::sleep(self.delay);
        Ok(DecodedSample {
            data: vec![F16::from_f32(0.0); 8],
            label: Label::Cosmo([0.0; 4]),
        })
    }
}

/// Source that burns a fixed wall-clock time per fetch.
struct SleepySource {
    inner: VecSource,
    delay: Duration,
}

impl SampleSource for SleepySource {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn fetch(&self, idx: usize) -> sciml_pipeline::Result<Vec<u8>> {
        std::thread::sleep(self.delay);
        self.inner.fetch(idx)
    }

    fn bytes_read(&self) -> u64 {
        self.inner.bytes_read()
    }
}

/// Runs a single-reader single-decoder pipeline with the given stage
/// delays under a sampler, returning the final bottleneck name.
fn bottleneck_of(fetch_delay: Duration, decode_delay: Duration) -> String {
    let tel = Telemetry::disabled();
    let cfg = PipelineConfig {
        batch_size: 4,
        reader_threads: 1,
        decode_threads: 1,
        ..PipelineConfig::default()
    };
    // Sampler first so its baseline predates all pipeline work.
    let sampler = PipelineSampler::spawn(
        Arc::clone(&tel.registry),
        Arc::clone(&tel.tracer),
        SamplerConfig {
            interval: Duration::from_millis(20),
            stages: pipeline_stages(1, 1),
            live: false,
        },
    );
    let source = Arc::new(SleepySource {
        inner: VecSource::new(blobs(16)),
        delay: fetch_delay,
    });
    let plugin = Arc::new(SleepyPlugin {
        delay: decode_delay,
    });
    let p = Pipeline::launch_with(source, plugin, cfg, tel.clone()).expect("launch");
    p.collect_all().expect("run");
    sampler.stop().bottleneck
}

/// The attribution acceptance scenarios: a decode-bound pipeline names
/// decode, a fetch-bound pipeline names fetch.
#[test]
fn attribution_names_the_bound_stage_in_both_scenarios() {
    assert_eq!(
        bottleneck_of(Duration::ZERO, Duration::from_millis(3)),
        "decode",
        "decode-bound pipeline"
    );
    assert_eq!(
        bottleneck_of(Duration::from_millis(3), Duration::ZERO),
        "fetch",
        "fetch-bound pipeline"
    );
}
